//! Validates a `BENCH_pipeline.json` produced by `bench_pipeline` against
//! the expected schema; exits non-zero on any drift so `scripts/verify.sh`
//! catches format regressions.
//!
//! Run with: `cargo run -p srtd-bench --bin bench_check -- BENCH_pipeline.json`

use srtd_runtime::json::{parse, Json};
use std::process::exit;

const SCHEMA: &str = "srtd-bench-pipeline-v7";
const TOP_LEVEL_KEYS: [&str; 14] = [
    "schema",
    "quick",
    "threads_available",
    "input",
    "cases",
    "speedups",
    "pool",
    "epochs",
    "determinism",
    "dtw_prune",
    "grouping_scale",
    "feature_fusion",
    "obs_overhead",
    "counters",
];
const CASE_KEYS: [&str; 6] = ["group", "name", "median_ns", "min_ns", "max_ns", "batch"];

fn fail(msg: &str) -> ! {
    eprintln!("bench-check: {msg}");
    exit(1);
}

fn get<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| fail("usage: bench_check <BENCH_pipeline.json>"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let tree = parse(&text).unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e:?}")));
    let Json::Obj(fields) = tree else {
        fail("top level must be a JSON object");
    };
    for key in TOP_LEVEL_KEYS {
        if get(&fields, key).is_none() {
            fail(&format!("missing top-level key `{key}`"));
        }
    }
    match get(&fields, "schema") {
        Some(Json::Str(s)) if s == SCHEMA => {}
        Some(other) => fail(&format!("schema must be \"{SCHEMA}\", got {other:?}")),
        None => unreachable!(),
    }
    let threads_available = match get(&fields, "threads_available") {
        Some(Json::Num(n)) if *n >= 1.0 => *n,
        _ => fail("threads_available must be a number >= 1"),
    };
    let Some(Json::Arr(cases)) = get(&fields, "cases") else {
        fail("cases must be an array");
    };
    if cases.is_empty() {
        fail("cases must not be empty");
    }
    for (i, case) in cases.iter().enumerate() {
        let Json::Obj(case_fields) = case else {
            fail(&format!("cases[{i}] must be an object"));
        };
        for key in CASE_KEYS {
            match get(case_fields, key) {
                None => fail(&format!("cases[{i}] missing key `{key}`")),
                Some(Json::Num(n)) if key.ends_with("_ns") && *n <= 0.0 => {
                    fail(&format!("cases[{i}].{key} must be positive"))
                }
                Some(_) => {}
            }
        }
    }
    for section in ["input", "speedups", "determinism", "counters"] {
        if !matches!(get(&fields, section), Some(Json::Obj(_))) {
            fail(&format!("`{section}` must be an object"));
        }
    }
    let Some(Json::Obj(speedups)) = get(&fields, "speedups") else {
        unreachable!();
    };
    // Parallel speedups are honest claims only when the host actually has
    // more than one core; the flag records which world the numbers came
    // from, and the >1.0 assertion is gated on it.
    let meaningful = match get(speedups, "parallel_speedups_meaningful") {
        Some(Json::Bool(b)) => *b,
        _ => fail("speedups.parallel_speedups_meaningful must be a bool"),
    };
    if meaningful != (threads_available > 1.0) {
        fail("speedups.parallel_speedups_meaningful must match threads_available > 1");
    }
    match get(speedups, "framework_par4_vs_seq") {
        Some(Json::Num(n)) if *n > 0.0 => {
            if meaningful && *n <= 1.0 {
                fail("speedups.framework_par4_vs_seq must exceed 1.0 on a multi-core host");
            }
        }
        _ => fail("speedups.framework_par4_vs_seq must be a positive number"),
    }
    if !meaningful {
        println!(
            "bench-check: single-core host, skipping parallel-speedup assertions \
             (framework_par4_vs_seq recorded for context only)"
        );
    }
    let Some(Json::Obj(pool)) = get(&fields, "pool") else {
        fail("`pool` must be an object");
    };
    let pool_num = |key: &str| -> f64 {
        match get(pool, key) {
            Some(Json::Num(n)) if *n >= 0.0 => *n,
            _ => fail(&format!("pool.{key} must be a number >= 0")),
        }
    };
    for key in [
        "dispatch_items",
        "dispatch_threads",
        "dispatch_scoped_median_ns",
        "dispatch_pool_median_ns",
    ] {
        if pool_num(key) <= 0.0 {
            fail(&format!("pool.{key} must be positive"));
        }
    }
    let dispatch_ratio = pool_num("dispatch_pool_vs_scoped");
    if dispatch_ratio <= 0.0 {
        fail("pool.dispatch_pool_vs_scoped must be positive");
    }
    // The pool's whole point is that unparking beats spawning; but on a
    // single-core host both benches degenerate toward the sequential
    // path, so the claim is only asserted where it is meaningful.
    if meaningful && dispatch_ratio <= 1.0 {
        fail("pool.dispatch_pool_vs_scoped must exceed 1.0 on a multi-core host");
    }
    if pool_num("jobs") < 1.0 {
        fail("pool.jobs must be at least 1 (the dispatch bench ran on the pool)");
    }
    pool_num("wakeups");
    let checkouts = pool_num("scratch_checkouts");
    let reuses = pool_num("scratch_reuses");
    if checkouts < 1.0 {
        fail("pool.scratch_checkouts must be at least 1 (feature passes use the arena)");
    }
    if reuses > checkouts {
        fail("pool.scratch_reuses cannot exceed scratch_checkouts");
    }
    let hit_rate = pool_num("scratch_hit_rate");
    if !(0.0..=1.0).contains(&hit_rate) {
        fail("pool.scratch_hit_rate must be in [0, 1]");
    }
    if (hit_rate - reuses / checkouts).abs() > 1e-9 {
        fail("pool.scratch_hit_rate is inconsistent with the checkout counts");
    }
    // The counters are sampled after a warmup pass, so a cold arena on
    // every checkout would mean thread-locals are being torn down between
    // batches — exactly the regression the persistent pool exists to
    // prevent.
    if hit_rate < 0.5 {
        fail(&format!(
            "pool.scratch_hit_rate is {hit_rate}; warm arenas must dominate \
             after warmup"
        ));
    }
    if !matches!(get(pool, "note"), Some(Json::Str(_))) {
        fail("pool.note must be a string");
    }
    let Some(Json::Obj(epochs)) = get(&fields, "epochs") else {
        fail("`epochs` must be an object");
    };
    let epoch_num = |key: &str| -> f64 {
        match get(epochs, key) {
            Some(Json::Num(n)) if *n >= 0.0 => *n,
            _ => fail(&format!("epochs.{key} must be a number >= 0")),
        }
    };
    let cold_iters = epoch_num("cold_iterations");
    let warm_iters = epoch_num("warm_iterations");
    if !matches!(get(epochs, "warm_started"), Some(Json::Bool(true))) {
        fail("epochs.warm_started must be true");
    }
    if warm_iters > 2.0 {
        fail("epochs.warm_iterations must be <= 2 (steady-state contract)");
    }
    if warm_iters >= cold_iters {
        fail("epochs.warm_iterations must be strictly below cold_iterations");
    }
    for key in [
        "cold_median_ns",
        "warm_median_ns",
        "warm_speedup",
        "fold_median_ns",
        "rebuild_median_ns",
        "fold_speedup_vs_rebuild",
    ] {
        if epoch_num(key) <= 0.0 {
            fail(&format!("epochs.{key} must be positive"));
        }
    }
    if epoch_num("fold_batch_reports") < 1.0 {
        fail("epochs.fold_batch_reports must be positive");
    }
    match get(&fields, "determinism") {
        Some(Json::Obj(d)) => match get(d, "framework_bit_identical_threads_1_vs_4") {
            Some(Json::Bool(true)) => {}
            _ => fail("determinism.framework_bit_identical_threads_1_vs_4 must be true"),
        },
        _ => unreachable!(),
    }
    let Some(Json::Obj(prune)) = get(&fields, "dtw_prune") else {
        fail("`dtw_prune` must be an object");
    };
    let prune_num = |key: &str| -> f64 {
        match get(prune, key) {
            Some(Json::Num(n)) if *n >= 0.0 => *n,
            _ => fail(&format!("dtw_prune.{key} must be a number >= 0")),
        }
    };
    let pairs = prune_num("pairs");
    let kim = prune_num("lb_kim_pruned");
    let keogh = prune_num("lb_keogh_pruned");
    let abandoned = prune_num("early_abandoned");
    let full_evals = prune_num("full_evals");
    if pairs < 1.0 {
        fail("dtw_prune.pairs must be positive");
    }
    if kim + keogh + abandoned + full_evals != pairs {
        fail("dtw_prune outcome counts must partition the pair count");
    }
    if full_evals >= pairs {
        fail("dtw_prune.full_evals must be strictly below the pair count");
    }
    let rate = prune_num("prune_rate");
    if !(0.0..=1.0).contains(&rate) {
        fail("dtw_prune.prune_rate must be in [0, 1]");
    }
    for key in ["full_median_ns", "pruned_median_ns", "speedup_vs_full"] {
        if prune_num(key) <= 0.0 {
            fail(&format!("dtw_prune.{key} must be positive"));
        }
    }
    if !matches!(get(prune, "grouping_identical"), Some(Json::Bool(true))) {
        fail("dtw_prune.grouping_identical must be true");
    }
    // Per-signal blocking honesty: the candidate count each signal visits
    // can never exceed the pairs it was responsible for.
    for signal in ["ag_ts", "ag_tr"] {
        let total = prune_num(&format!("{signal}_pairs_total"));
        let candidate = prune_num(&format!("{signal}_pairs_candidate"));
        if candidate > total {
            fail(&format!(
                "dtw_prune.{signal}_pairs_candidate ({candidate}) exceeds \
                 {signal}_pairs_total ({total})"
            ));
        }
    }
    let Some(Json::Obj(scale)) = get(&fields, "grouping_scale") else {
        fail("`grouping_scale` must be an object");
    };
    let scale_num = |key: &str| -> f64 {
        match get(scale, key) {
            Some(Json::Num(n)) if *n >= 0.0 => *n,
            _ => fail(&format!("grouping_scale.{key} must be a number >= 0")),
        }
    };
    let accounts = scale_num("accounts");
    if accounts < 100_000.0 {
        fail("grouping_scale.accounts must cover at least 100k accounts");
    }
    let pairs_total = scale_num("pairs_total");
    let pairs_visited = scale_num("pairs_visited");
    // Two blocked pairwise signals over n(n−1)/2 pairs each.
    if pairs_total != accounts * (accounts - 1.0) {
        fail("grouping_scale.pairs_total must be 2 · n(n−1)/2 for the two pairwise signals");
    }
    if pairs_visited > pairs_total {
        fail("grouping_scale.pairs_visited exceeds pairs_total");
    }
    let skip_rate = scale_num("blocking_skip_rate");
    if (skip_rate - (1.0 - pairs_visited / pairs_total)).abs() > 1e-9 {
        fail("grouping_scale.blocking_skip_rate is inconsistent with the pair counts");
    }
    // The sub-quadratic acceptance bar: ≥ 99% of pairwise work skipped.
    if skip_rate < 0.99 {
        fail(&format!(
            "grouping_scale.blocking_skip_rate is {skip_rate}; blocking must \
             skip at least 99% of the pairwise work at this scale"
        ));
    }
    if scale_num("generate_ms") <= 0.0 {
        fail("grouping_scale.generate_ms must be positive");
    }
    for signal in ["ag_ts", "ag_tr"] {
        let Some(Json::Obj(sig)) = get(scale, signal) else {
            fail(&format!("grouping_scale.{signal} must be an object"));
        };
        let sig_num = |key: &str| -> f64 {
            match get(sig, key) {
                Some(Json::Num(n)) if *n >= 0.0 => *n,
                _ => fail(&format!(
                    "grouping_scale.{signal}.{key} must be a number >= 0"
                )),
            }
        };
        if sig_num("pairs_candidate") > sig_num("pairs_total") {
            fail(&format!(
                "grouping_scale.{signal}: candidate pairs exceed the total"
            ));
        }
        if sig_num("pairs_total") != accounts * (accounts - 1.0) / 2.0 {
            fail(&format!(
                "grouping_scale.{signal}.pairs_total must be n(n−1)/2"
            ));
        }
        if sig_num("groups") < 1.0 || sig_num("groups") > accounts {
            fail(&format!("grouping_scale.{signal}.groups out of range"));
        }
        if sig_num("wall_ms") <= 0.0 {
            fail(&format!("grouping_scale.{signal}.wall_ms must be positive"));
        }
        sig_num("buckets");
    }
    let Some(Json::Obj(fp)) = get(scale, "ag_fp") else {
        fail("grouping_scale.ag_fp must be an object");
    };
    let fp_num = |key: &str| -> f64 {
        match get(fp, key) {
            Some(Json::Num(n)) if *n >= 0.0 => *n,
            _ => fail(&format!("grouping_scale.ag_fp.{key} must be a number >= 0")),
        }
    };
    if fp_num("distance_evals") + fp_num("skipped_by_norm") != fp_num("pairs_total") {
        fail("grouping_scale.ag_fp: evaluated + skipped must partition the comparison total");
    }
    if fp_num("k") < 1.0 || fp_num("wall_ms") <= 0.0 {
        fail("grouping_scale.ag_fp k/wall_ms out of range");
    }
    if !matches!(get(scale, "note"), Some(Json::Str(_))) {
        fail("grouping_scale.note must be a string");
    }
    let Some(Json::Obj(fusion)) = get(&fields, "feature_fusion") else {
        fail("`feature_fusion` must be an object");
    };
    let fusion_num = |key: &str| -> f64 {
        match get(fusion, key) {
            Some(Json::Num(n)) if *n >= 0.0 => *n,
            _ => fail(&format!("feature_fusion.{key} must be a number >= 0")),
        }
    };
    let passes_before = fusion_num("passes_before_per_stream");
    let passes_after = fusion_num("passes_after_per_stream");
    if passes_after < 1.0 || passes_after >= passes_before {
        fail("feature_fusion pass counts must satisfy 1 <= after < before");
    }
    for key in ["seed_median_ns", "per_stream_median_ns", "fused_median_ns"] {
        if fusion_num(key) <= 0.0 {
            fail(&format!("feature_fusion.{key} must be positive"));
        }
    }
    if fusion_num("fused_vs_seed_speedup") <= 1.0 {
        fail("feature_fusion.fused_vs_seed_speedup must exceed 1.0");
    }
    for key in [
        "window_cache_hits",
        "window_cache_misses",
        "fused_calls",
        "peak_pairs",
    ] {
        fusion_num(key);
    }
    if !matches!(get(fusion, "note"), Some(Json::Str(_))) {
        fail("feature_fusion.note must be a string");
    }
    let Some(Json::Obj(obs)) = get(&fields, "obs_overhead") else {
        fail("`obs_overhead` must be an object");
    };
    let obs_num = |key: &str| -> f64 {
        match get(obs, key) {
            Some(Json::Num(n)) if *n >= 0.0 => *n,
            _ => fail(&format!("obs_overhead.{key} must be a number >= 0")),
        }
    };
    if obs_num("ops_per_sample") < 1.0 {
        fail("obs_overhead.ops_per_sample must be positive");
    }
    // The disabled path is one relaxed atomic load per call: anywhere
    // near 1µs/op would mean the gate regressed into lock or allocation
    // territory. 1000ns is a deliberately loose ceiling that still
    // catches that class of regression on slow CI hosts.
    for key in [
        "counter_add_disabled_ns_per_op",
        "span_disabled_ns_per_op",
        "observe_disabled_ns_per_op",
    ] {
        let ns = obs_num(key);
        if ns >= 1000.0 {
            fail(&format!(
                "obs_overhead.{key} is {ns} ns/op; the disabled path must stay \
                 far below 1000 ns"
            ));
        }
    }
    if !matches!(get(obs, "note"), Some(Json::Str(_))) {
        fail("obs_overhead.note must be a string");
    }
    println!("bench-check: OK ({path})");
}
