//! Golden export for the blocking counters: one instrumented grouping run
//! per pairwise signal must surface the `grouping.pairs.*` partition and
//! the per-signal `grouping.<signal>.pairs.*` mirrors, their deterministic
//! JSON export must be byte-identical across worker-thread counts, and the
//! exported counts must equal what the candidate generators report when
//! run standalone.
//!
//! This file holds a single test on purpose: the obs registry is
//! process-wide, and a second concurrently running test would bleed
//! metrics into the snapshot (same contract as `obs_prune.rs`).

use sybil_td::core::grouping::blocking;
use sybil_td::core::{AccountGrouping, AgTr, AgTs};
use sybil_td::runtime::obs;
use sybil_td::runtime::parallel::set_max_threads;
use sybil_td::truth::SensingData;

/// 40 accounts in 10 cliques of 4: clique members share one task set and
/// one tight walk, so both signals have real edges to find while blocking
/// still skips most of the 780 pairs.
fn clique_campaign() -> SensingData {
    let mut data = SensingData::new(200);
    for a in 0..40usize {
        let clique = a / 4;
        for k in 0..5usize {
            let t = (clique * 19 + k * 3) % 200;
            let when = (clique * 7000 + k * 120 + (a % 4) * 25) as f64;
            data.add_report(a, t, -60.0, when);
        }
    }
    data
}

fn counter(report: &obs::Report, name: &str) -> u64 {
    report
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

fn gauge(report: &obs::Report, name: &str) -> f64 {
    report
        .gauges
        .iter()
        .find(|(n, _)| n == name)
        .map_or(f64::NAN, |(_, v)| *v)
}

#[test]
fn blocking_counters_export_deterministically_and_match_the_generators() {
    let data = clique_campaign();
    let ag_ts = AgTs::default();
    let ag_tr = AgTr::default();

    // Reference candidate sets from the generators themselves (outside
    // instrumentation).
    let task_sets: Vec<Vec<usize>> = (0..data.num_accounts()).map(|a| data.tasks_of(a)).collect();
    let ts_ref = blocking::ts_candidates(&task_sets, data.num_tasks(), None);
    let tr_ref = blocking::tr_candidates(&ag_tr.trajectories(&data), ag_tr.phi(), None);
    let total = (40 * 39 / 2) as u64;
    assert_eq!(ts_ref.total_pairs, total);
    assert_eq!(tr_ref.total_pairs, total);
    assert!(
        !ts_ref.pairs.is_empty() && (ts_ref.pairs.len() as u64) < total,
        "TS blocking must keep some pairs and skip some ({} of {total})",
        ts_ref.pairs.len()
    );
    assert!(
        !tr_ref.pairs.is_empty() && (tr_ref.pairs.len() as u64) < total,
        "TR blocking must keep some pairs and skip some ({} of {total})",
        tr_ref.pairs.len()
    );

    // One instrumented grouping pass (both pairwise signals) per thread
    // count; the deterministic export must be byte-identical.
    let mut exports = Vec::new();
    let mut reports = Vec::new();
    for threads in [1usize, 4] {
        set_max_threads(threads);
        obs::set_enabled(true);
        obs::reset();
        let _ = ag_ts.group(&data, &[]);
        let _ = ag_tr.group(&data, &[]);
        let report = obs::snapshot();
        obs::set_enabled(false);
        exports.push(report.deterministic_json());
        reports.push(report);
    }
    set_max_threads(0);
    assert_eq!(
        exports[0], exports[1],
        "deterministic export must not depend on the worker count"
    );

    // Exported counters mirror the standalone generators exactly. The
    // unsuffixed counters aggregate both signals; the per-signal mirrors
    // attribute them.
    let report = &reports[0];
    let ts_cand = ts_ref.pairs.len() as u64;
    let tr_cand = tr_ref.pairs.len() as u64;
    assert_eq!(counter(report, "grouping.pairs.total"), 2 * total);
    assert_eq!(
        counter(report, "grouping.pairs.candidate"),
        ts_cand + tr_cand
    );
    assert_eq!(
        counter(report, "grouping.pairs.skipped_by_blocking"),
        2 * total - ts_cand - tr_cand
    );
    assert_eq!(counter(report, "grouping.ag_ts.pairs.total"), total);
    assert_eq!(counter(report, "grouping.ag_ts.pairs.candidate"), ts_cand);
    assert_eq!(
        counter(report, "grouping.ag_ts.pairs.skipped_by_blocking"),
        total - ts_cand
    );
    assert_eq!(counter(report, "grouping.ag_tr.pairs.total"), total);
    assert_eq!(counter(report, "grouping.ag_tr.pairs.candidate"), tr_cand);
    assert_eq!(
        counter(report, "grouping.ag_tr.pairs.skipped_by_blocking"),
        total - tr_cand
    );
    // The partition invariant holds by construction; pin it anyway.
    assert_eq!(
        counter(report, "grouping.pairs.candidate")
            + counter(report, "grouping.pairs.skipped_by_blocking"),
        counter(report, "grouping.pairs.total")
    );

    // Bucket gauges (wall-clock-free facts, but gauges are last-write so
    // they live outside the deterministic export) track the generators.
    assert_eq!(
        gauge(report, "grouping.ag_ts.buckets"),
        ts_ref.buckets as f64
    );
    assert_eq!(
        gauge(report, "grouping.ag_tr.buckets"),
        tr_ref.buckets as f64
    );

    // This is the golden shape downstream tooling parses.
    for name in [
        "grouping.pairs.total",
        "grouping.pairs.candidate",
        "grouping.pairs.skipped_by_blocking",
        "grouping.ag_ts.pairs.candidate",
        "grouping.ag_tr.pairs.candidate",
    ] {
        assert!(
            exports[0].contains(name),
            "deterministic export must name `{name}`"
        );
    }
}
