//! Platform-side rejection reasons.

use std::error::Error;
use std::fmt;

/// Why an enrollment was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum EnrollError {
    /// The fingerprint vector has the wrong dimensionality.
    BadFingerprint {
        /// Dimensions received.
        got: usize,
        /// Dimensions required.
        want: usize,
    },
    /// A fingerprint value is NaN or infinite.
    NonFiniteFingerprint,
}

impl fmt::Display for EnrollError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnrollError::BadFingerprint { got, want } => {
                write!(
                    f,
                    "fingerprint has {got} dimensions, platform requires {want}"
                )
            }
            EnrollError::NonFiniteFingerprint => {
                write!(f, "fingerprint contains non-finite values")
            }
        }
    }
}

impl Error for EnrollError {}

/// Why a report submission was refused.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubmitError {
    /// The account id was never enrolled.
    UnknownAccount,
    /// The task id is outside the published campaign.
    UnknownTask,
    /// The account already reported this task (the paper's one-report
    /// rule: "each account is allowed to submit at most one data for one
    /// task").
    DuplicateReport,
    /// The claimed timestamp lies in the platform's future — the §III-C
    /// assumption that "the timestamps cannot be fabricated", enforced.
    FutureTimestamp {
        /// Claimed submission time.
        claimed: f64,
        /// Platform clock at receipt.
        clock: f64,
    },
    /// The claimed timestamp precedes the account's enrollment.
    BeforeEnrollment,
    /// The claimed timestamp runs backwards relative to the account's own
    /// previous submission (a device cannot un-visit a POI).
    NonMonotoneTimestamp,
    /// The value is NaN or infinite.
    NonFiniteValue,
    /// The value lies outside the campaign's plausible band.
    ImplausibleValue {
        /// The rejected value.
        value: f64,
    },
    /// No campaign is open.
    NoCampaign,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::UnknownAccount => write!(f, "account is not enrolled"),
            SubmitError::UnknownTask => write!(f, "task is not part of the campaign"),
            SubmitError::DuplicateReport => {
                write!(f, "account already reported this task")
            }
            SubmitError::FutureTimestamp { claimed, clock } => {
                write!(
                    f,
                    "timestamp {claimed} is ahead of the platform clock {clock}"
                )
            }
            SubmitError::BeforeEnrollment => {
                write!(f, "timestamp precedes the account's enrollment")
            }
            SubmitError::NonMonotoneTimestamp => {
                write!(f, "timestamp runs backwards for this account")
            }
            SubmitError::NonFiniteValue => write!(f, "value is not finite"),
            SubmitError::ImplausibleValue { value } => {
                write!(f, "value {value} is outside the campaign's plausible band")
            }
            SubmitError::NoCampaign => write!(f, "no campaign has been published"),
        }
    }
}

impl Error for SubmitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let errors: Vec<Box<dyn Error>> = vec![
            Box::new(EnrollError::BadFingerprint { got: 3, want: 80 }),
            Box::new(EnrollError::NonFiniteFingerprint),
            Box::new(SubmitError::UnknownAccount),
            Box::new(SubmitError::FutureTimestamp {
                claimed: 10.0,
                clock: 5.0,
            }),
            Box::new(SubmitError::ImplausibleValue { value: 9e9 }),
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().expect("non-empty").is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }
}
