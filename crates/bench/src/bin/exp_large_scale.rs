//! Extension experiment: the large-scale simulation the paper could not
//! run.
//!
//! §V-A argues the 2-attacker experiment "can still represent the
//! scenario when an MCS system is under a large scale of the Sybil
//! attack since the percentage of the Sybil accounts is larger than that
//! of the legitimate users". With a simulator we can test that claim
//! directly: scale the campaign up (40 legitimate users) and sweep the
//! Sybil *intensity* — accounts per attacker — measuring CRH and TD-TR
//! MAE plus AG-TR pair diagnostics.
//!
//! Run with: `cargo run -p srtd-bench --release --bin exp_large_scale [seeds]`

use srtd_bench::table::Table;
use srtd_core::{AccountGrouping, AgTr, SybilResistantTd};
use srtd_metrics::{mae, PairDiagnostics};
use srtd_sensing::{AttackerSpec, Scenario, ScenarioConfig};
use srtd_truth::{Crh, TruthDiscovery};

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!("Extension — large-scale Sybil pressure ({seeds} seeds, 40 legit users, 20 tasks)\n");

    let mut t = Table::new(
        [
            "accounts/attacker",
            "sybil share",
            "CRH MAE",
            "TD-TR MAE",
            "pair precision",
            "pair recall",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut crh_curve = Vec::new();
    let mut tr_curve = Vec::new();
    for accounts_per_attacker in [2usize, 5, 10, 20, 40] {
        let mut crh_sum = 0.0;
        let mut tr_sum = 0.0;
        let mut precision = 0.0;
        let mut recall = 0.0;
        let mut share = 0.0;
        for seed in 0..seeds {
            let attackers = vec![
                AttackerSpec {
                    accounts: accounts_per_attacker,
                    ..AttackerSpec::paper_attack_i()
                },
                AttackerSpec {
                    accounts: accounts_per_attacker,
                    ..AttackerSpec::paper_attack_ii()
                },
            ];
            let cfg = ScenarioConfig {
                num_legit: 40,
                num_tasks: 20,
                attackers,
                ..ScenarioConfig::paper_default()
            }
            .with_seed(seed);
            let s = Scenario::generate(&cfg);
            share += s.is_sybil.iter().filter(|&&x| x).count() as f64 / s.num_accounts() as f64;
            crh_sum += mae(
                &Crh::default().discover(&s.data).truths_or(0.0),
                &s.ground_truth,
            )
            .expect("lengths");
            let r = SybilResistantTd::new(AgTr::default()).discover(&s.data, &s.fingerprints);
            tr_sum += mae(&r.truths_or(0.0), &s.ground_truth).expect("lengths");
            let g = AgTr::default().group(&s.data, &s.fingerprints);
            let d = PairDiagnostics::from_labels(g.labels(), &s.owners);
            precision += d.precision();
            recall += d.recall();
        }
        let n = seeds as f64;
        crh_curve.push(crh_sum / n);
        tr_curve.push(tr_sum / n);
        t.add_row(vec![
            accounts_per_attacker.to_string(),
            format!("{:.0}%", 100.0 * share / n),
            format!("{:.2}", crh_sum / n),
            format!("{:.2}", tr_sum / n),
            format!("{:.3}", precision / n),
            format!("{:.3}", recall / n),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape: CRH degrades monotonically as the Sybil share");
    println!("grows (per-task majorities flip around 50%); TD-TR stays flat —");
    println!("any number of same-walk accounts still collapses to one group");
    println!("voice — confirming the paper's claim that the Sybil *share*,");
    println!("not the absolute attacker count, is what matters.");
    assert!(
        crh_curve.last().expect("rows") > crh_curve.first().expect("rows"),
        "CRH should degrade with Sybil pressure"
    );
    let tr_worst = tr_curve.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let crh_worst = crh_curve.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(
        tr_worst < 0.3 * crh_worst,
        "TD-TR ({tr_worst}) should stay far below CRH ({crh_worst})"
    );
    println!("\n[shape checks passed]");
}
