//! Pruned pairwise DTW: an LB_Kim → LB_Keogh cascade over precomputed
//! envelopes, falling through to the early-abandoning banded dynamic
//! program.
//!
//! AG-TR keeps a pair of accounts only when their Eq. 8 dissimilarity
//! falls below the threshold `φ`, and the connected-components step that
//! follows consumes **only that decision** plus the exact distance of
//! kept pairs. A pruned pairwise driver can therefore report any
//! provably-above-φ pair as `f64::INFINITY` without ever computing its
//! distance, as long as
//!
//! * no pair with true distance `< φ` is ever pruned (every kept pair
//!   carries a value bit-identical to the unpruned path), and
//! * every pruned pair truly has distance `> φ`.
//!
//! Both hold by construction: the cascade only skips a pair when a lower
//! bound on its distance exceeds the cutoff, and the fall-through DP
//! ([`Dtw::distance_upper_bounded`]) only abandons when the cumulative
//! cost provably overshoots the remaining budget. The engine is therefore
//! **decision-equivalent** to the full matrix, which the workspace pins
//! with property tests here and an AG-TR equivalence suite at the root.
//!
//! Stages are ordered by evaluation cost, not bound tightness (neither
//! LB dominates the other): `O(1)` LB_Kim, `O(n)` LB_Keogh against
//! envelopes computed once per series, then the `O(n·w)` banded DP.

use crate::bounds::{lb_keogh_env, lb_kim, Envelope};
use crate::Dtw;
use srtd_runtime::obs;
use srtd_runtime::parallel::{parallel_map_min, triangle_pairs};

/// Below this many pairs the engine stays sequential — pruned pairs cost
/// nanoseconds, so a thread scope would dominate. The gate depends only
/// on the input size, never the machine, so output is identical either
/// way (and [`parallel_map_min`]'s chunking is deterministic regardless).
const MIN_PARALLEL_PAIRS: usize = 256;

/// Sequential-fallback gate for the per-series envelope precomputation.
const MIN_PARALLEL_SERIES: usize = 64;

/// How the Sakoe–Chiba half-width is chosen for a pair of series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BandPolicy {
    /// Unconstrained warping (exact classic DTW).
    None,
    /// A fixed half-width for every pair (widened to `|m − n|` by the DP
    /// when infeasible).
    Fixed(usize),
    /// Band grows with the longer series: below `min_len` points the pair
    /// is unbanded (paper-scale series keep their exact semantics), from
    /// there on the half-width is `max(min_band, len / divisor)`.
    Adaptive {
        /// Series shorter than this warp unconstrained.
        min_len: usize,
        /// Floor for the adaptive half-width.
        min_band: usize,
        /// Half-width is `len / divisor` (≥ `min_band`).
        divisor: usize,
    },
}

impl BandPolicy {
    /// The default adaptive rule: unbanded below 64 points, then
    /// `max(16, len/8)` — roughly the 10%-of-length guidance from the
    /// DTW-banding literature, with a generous floor so warp flexibility
    /// never collapses on mid-size series.
    pub fn adaptive() -> Self {
        Self::Adaptive {
            min_len: 64,
            min_band: 16,
            divisor: 8,
        }
    }

    /// The half-width for a pair with lengths `la`, `lb` (`None` =
    /// unconstrained).
    pub fn band_for(&self, la: usize, lb: usize) -> Option<usize> {
        match *self {
            Self::None => None,
            Self::Fixed(w) => Some(w),
            Self::Adaptive {
                min_len,
                min_band,
                divisor,
            } => {
                let len = la.max(lb);
                if len < min_len {
                    None
                } else {
                    Some(min_band.max(len / divisor.max(1)))
                }
            }
        }
    }
}

/// Where each pair of one pruned matrix computation ended up. The four
/// categories partition the pair set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Unordered pairs considered, `n·(n−1)/2`.
    pub pairs: u64,
    /// Pairs discarded by the `O(1)` first/last-point bound.
    pub lb_kim_pruned: u64,
    /// Pairs discarded by the envelope bound (equal lengths only).
    pub lb_keogh_pruned: u64,
    /// Pairs whose dynamic program abandoned mid-way.
    pub early_abandoned: u64,
    /// Pairs whose dynamic program ran to completion (the only ones that
    /// paid the full `O(n·w)` cost).
    pub full_evals: u64,
}

impl PruneStats {
    /// Fraction of pairs that never completed a dynamic program.
    pub fn prune_rate(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            1.0 - self.full_evals as f64 / self.pairs as f64
        }
    }
}

/// Per-pair outcome; `Exact` carries the bit-exact summed distance.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PairOutcome {
    PrunedKim,
    PrunedKeogh,
    Abandoned,
    Exact(f64),
}

/// Pruned pairwise raw-DTW matrix driver.
///
/// Distances are **raw cumulative costs** (the cutoff lives in the same
/// space); multi-channel variants sum the per-channel distances before
/// comparing against the cutoff, which is exactly AG-TR's Eq. 8 shape.
/// The returned matrices are symmetric with a zero diagonal; pruned
/// entries read `f64::INFINITY`.
///
/// # Examples
///
/// ```
/// use srtd_timeseries::{Dtw, PrunedPairwise};
///
/// let series = vec![vec![0.0, 0.1], vec![0.0, 0.2], vec![90.0, 91.0]];
/// let m = PrunedPairwise::new(1.0).matrix(&series);
/// // The close pair keeps its exact distance...
/// assert_eq!(m[0][1], Dtw::new().raw().distance(&series[0], &series[1]));
/// // ...the far pairs are pruned without a full DTW evaluation.
/// assert_eq!(m[0][2], f64::INFINITY);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrunedPairwise {
    cutoff: f64,
    band: BandPolicy,
}

impl PrunedPairwise {
    /// An engine keeping pairs with summed raw distance `≤ cutoff` exact.
    ///
    /// An infinite cutoff disables pruning entirely (every pair runs the
    /// full dynamic program); the default band policy is
    /// [`BandPolicy::adaptive`].
    ///
    /// # Panics
    ///
    /// Panics if `cutoff` is NaN or negative.
    pub fn new(cutoff: f64) -> Self {
        assert!(
            !cutoff.is_nan() && cutoff >= 0.0,
            "cutoff must be non-negative"
        );
        Self {
            cutoff,
            band: BandPolicy::adaptive(),
        }
    }

    /// Replaces the band policy.
    pub fn with_band(mut self, band: BandPolicy) -> Self {
        self.band = band;
        self
    }

    /// The pruning cutoff in raw-cost space.
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// The band policy.
    pub fn band(&self) -> BandPolicy {
        self.band
    }

    /// The DTW configuration the exact fall-through uses for a pair.
    fn dtw_for(&self, la: usize, lb: usize) -> Dtw {
        let dtw = Dtw::new().raw();
        match self.band.band_for(la, lb) {
            Some(w) => dtw.with_band(w),
            None => dtw,
        }
    }

    /// Envelope of one series at its own (equal-length-pair) band. For an
    /// unbanded pair the window must span the whole series, otherwise
    /// LB_Keogh would not bound unconstrained DTW.
    fn envelope_for(&self, series: &[f64]) -> Envelope {
        let w = self
            .band
            .band_for(series.len(), series.len())
            .unwrap_or_else(|| series.len().saturating_sub(1));
        Envelope::new(series, w)
    }

    /// Runs the cascade for one pair of multi-channel items (`a[c]`
    /// against `b[c]`, distances summed across channels).
    fn decide(
        &self,
        a: &[&[f64]],
        b: &[&[f64]],
        env_a: &[&Envelope],
        env_b: &[&Envelope],
    ) -> PairOutcome {
        let channels = a.len();
        // Stage 1 — LB_Kim, O(1) per channel.
        let mut kim = [0.0f64; 2];
        debug_assert!(channels <= kim.len());
        let mut kim_sum = 0.0;
        for c in 0..channels {
            kim[c] = lb_kim(a[c], b[c]);
            kim_sum += kim[c];
        }
        if kim_sum > self.cutoff {
            return PairOutcome::PrunedKim;
        }

        // Stage 2 — LB_Keogh against the precomputed envelopes, O(n) per
        // channel. Only sound for equal lengths; ragged pairs fall back
        // to LB_Kim alone (no panic — see the AG-TR regression tests).
        let equal_lengths = (0..channels).all(|c| a[c].len() == b[c].len());
        if equal_lengths {
            let mut bound_sum = 0.0;
            for c in 0..channels {
                let keogh = f64::max(lb_keogh_env(a[c], env_b[c]), lb_keogh_env(b[c], env_a[c]));
                // Each of kim/keogh lower-bounds the channel distance, so
                // the larger one does too.
                bound_sum += f64::max(kim[c], keogh);
            }
            if bound_sum > self.cutoff {
                return PairOutcome::PrunedKeogh;
            }
        }

        // Stage 3 — early-abandoning banded DP, channel by channel. Each
        // channel's budget is what the cutoff leaves after the exact
        // distances so far and the LB_Kim floor of the channels still to
        // come; a kept pair (true sum ≤ cutoff) always fits every budget,
        // so its channels all run to completion bit-identically.
        let mut exact_sum = 0.0;
        for c in 0..channels {
            let rest: f64 = kim[c + 1..channels].iter().sum();
            let ub = if self.cutoff.is_finite() {
                self.cutoff - exact_sum - rest
            } else {
                f64::INFINITY
            };
            let d = self
                .dtw_for(a[c].len(), b[c].len())
                .distance_upper_bounded(a[c], b[c], ub);
            if d == f64::INFINITY && ub.is_finite() {
                return PairOutcome::Abandoned;
            }
            exact_sum += d;
        }
        PairOutcome::Exact(exact_sum)
    }

    /// Assembles the symmetric matrix, tallies [`PruneStats`], and
    /// records the `timeseries.dtw.*` pruning counters (tallied on the
    /// caller thread from the ordered outcome list, so the export is
    /// deterministic for every worker count).
    fn assemble(
        n: usize,
        pairs: &[(usize, usize)],
        outcomes: &[PairOutcome],
    ) -> (Vec<Vec<f64>>, PruneStats) {
        let mut matrix = vec![vec![0.0; n]; n];
        let mut stats = PruneStats {
            pairs: pairs.len() as u64,
            ..PruneStats::default()
        };
        for (&(i, j), outcome) in pairs.iter().zip(outcomes) {
            let d = match outcome {
                PairOutcome::PrunedKim => {
                    stats.lb_kim_pruned += 1;
                    f64::INFINITY
                }
                PairOutcome::PrunedKeogh => {
                    stats.lb_keogh_pruned += 1;
                    f64::INFINITY
                }
                PairOutcome::Abandoned => {
                    stats.early_abandoned += 1;
                    f64::INFINITY
                }
                PairOutcome::Exact(d) => {
                    stats.full_evals += 1;
                    *d
                }
            };
            matrix[i][j] = d;
            matrix[j][i] = d;
        }
        Self::record_counters(&stats);
        (matrix, stats)
    }

    /// Records the `timeseries.dtw.*` pruning counters for one pairwise
    /// computation (always on the caller thread, after the ordered
    /// outcome tally, so the export is deterministic for every worker
    /// count).
    fn record_counters(stats: &PruneStats) {
        obs::counter_add("timeseries.dtw.lb_kim_pruned", stats.lb_kim_pruned);
        obs::counter_add("timeseries.dtw.lb_keogh_pruned", stats.lb_keogh_pruned);
        obs::counter_add("timeseries.dtw.pair_early_abandoned", stats.early_abandoned);
        obs::counter_add("timeseries.dtw.full_evals", stats.full_evals);
    }

    /// Pruned pairwise matrix over single-channel series, with the
    /// per-stage [`PruneStats`].
    pub fn matrix_with_stats(&self, series: &[Vec<f64>]) -> (Vec<Vec<f64>>, PruneStats) {
        let _span = obs::span("timeseries.pruned_pairwise");
        let envelopes = parallel_map_min(series, MIN_PARALLEL_SERIES, |s| self.envelope_for(s));
        let pairs = triangle_pairs(series.len());
        let outcomes = parallel_map_min(&pairs, MIN_PARALLEL_PAIRS, |&(i, j)| {
            self.decide(
                &[&series[i]],
                &[&series[j]],
                &[&envelopes[i]],
                &[&envelopes[j]],
            )
        });
        Self::assemble(series.len(), &pairs, &outcomes)
    }

    /// [`PrunedPairwise::matrix_with_stats`] without the stats.
    pub fn matrix(&self, series: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.matrix_with_stats(series).0
    }

    /// Pruned pairwise matrix over two-channel items, each entry the
    /// **sum** of the per-channel raw distances — AG-TR's Eq. 8
    /// `DTW(X_i, X_j) + DTW(Y_i, Y_j)` — with the per-stage
    /// [`PruneStats`].
    pub fn matrix2_with_stats(
        &self,
        items: &[(Vec<f64>, Vec<f64>)],
    ) -> (Vec<Vec<f64>>, PruneStats) {
        let _span = obs::span("timeseries.pruned_pairwise");
        let envelopes = parallel_map_min(items, MIN_PARALLEL_SERIES, |(x, y)| {
            (self.envelope_for(x), self.envelope_for(y))
        });
        let pairs = triangle_pairs(items.len());
        let outcomes = parallel_map_min(&pairs, MIN_PARALLEL_PAIRS, |&(i, j)| {
            self.decide(
                &[&items[i].0, &items[i].1],
                &[&items[j].0, &items[j].1],
                &[&envelopes[i].0, &envelopes[i].1],
                &[&envelopes[j].0, &envelopes[j].1],
            )
        });
        Self::assemble(items.len(), &pairs, &outcomes)
    }

    /// [`PrunedPairwise::matrix2_with_stats`] without the stats.
    pub fn matrix2(&self, items: &[(Vec<f64>, Vec<f64>)]) -> Vec<Vec<f64>> {
        self.matrix2_with_stats(items).0
    }

    /// Sparse variant of [`PrunedPairwise::matrix2_with_stats`]: runs the
    /// cascade over an explicit candidate-pair list instead of the full
    /// upper triangle, and returns the surviving `(i, j, distance)`
    /// triples (pairs whose exact summed distance came in at or below the
    /// cutoff) instead of a dense n×n matrix — nothing quadratic in
    /// `items.len()` is ever allocated, which is what lets AG-TR group
    /// 100k+ accounts.
    ///
    /// For any pair present in `pairs` the outcome is bit-identical to
    /// the corresponding dense-matrix entry: same envelopes (computed
    /// only for items some candidate references), same cascade, same
    /// budgets. [`PruneStats::pairs`] counts `pairs.len()`.
    ///
    /// # Panics
    ///
    /// Panics if a pair index is out of range.
    pub fn edges2_with_stats(
        &self,
        items: &[(Vec<f64>, Vec<f64>)],
        pairs: &[(usize, usize)],
    ) -> (Vec<(usize, usize, f64)>, PruneStats) {
        let _span = obs::span("timeseries.pruned_pairwise");
        let mut needed = vec![false; items.len()];
        for &(i, j) in pairs {
            needed[i] = true;
            needed[j] = true;
        }
        let indices: Vec<usize> = (0..items.len()).collect();
        let envelopes = parallel_map_min(&indices, MIN_PARALLEL_SERIES, |&i| {
            if needed[i] {
                (
                    self.envelope_for(&items[i].0),
                    self.envelope_for(&items[i].1),
                )
            } else {
                // Never consulted — blocked-out items pay nothing.
                (Envelope::new(&[], 0), Envelope::new(&[], 0))
            }
        });
        let outcomes = parallel_map_min(pairs, MIN_PARALLEL_PAIRS, |&(i, j)| {
            self.decide(
                &[&items[i].0, &items[i].1],
                &[&items[j].0, &items[j].1],
                &[&envelopes[i].0, &envelopes[i].1],
                &[&envelopes[j].0, &envelopes[j].1],
            )
        });
        let mut edges = Vec::new();
        let mut stats = PruneStats {
            pairs: pairs.len() as u64,
            ..PruneStats::default()
        };
        for (&(i, j), outcome) in pairs.iter().zip(&outcomes) {
            match outcome {
                PairOutcome::PrunedKim => stats.lb_kim_pruned += 1,
                PairOutcome::PrunedKeogh => stats.lb_keogh_pruned += 1,
                PairOutcome::Abandoned => stats.early_abandoned += 1,
                PairOutcome::Exact(d) => {
                    stats.full_evals += 1;
                    edges.push((i, j, *d));
                }
            }
        }
        Self::record_counters(&stats);
        (edges, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::parallel::set_max_threads;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert, prop_assert_eq};

    fn full_matrix2(items: &[(Vec<f64>, Vec<f64>)], band: BandPolicy) -> Vec<Vec<f64>> {
        let n = items.len();
        let mut m = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in i + 1..n {
                let dx = {
                    let dtw = match band.band_for(items[i].0.len(), items[j].0.len()) {
                        Some(w) => Dtw::new().raw().with_band(w),
                        None => Dtw::new().raw(),
                    };
                    dtw.distance(&items[i].0, &items[j].0) + dtw.distance(&items[i].1, &items[j].1)
                };
                m[i][j] = dx;
                m[j][i] = dx;
            }
        }
        m
    }

    /// The decision-equivalence contract, as a property over random
    /// campaigns (ragged lengths included), cutoffs and band policies:
    /// kept pairs are bit-identical to the full path, pruned pairs truly
    /// sit above the cutoff.
    #[test]
    fn pruned_matrix2_is_decision_equivalent_to_full() {
        prop::check(
            |rng| {
                let items = prop::vec_with(rng, 2..8, |r| {
                    let len = r.gen_range(0usize..10);
                    (
                        (0..len)
                            .map(|_| r.gen_range(-5f64..5.0))
                            .collect::<Vec<f64>>(),
                        (0..len)
                            .map(|_| r.gen_range(-5f64..5.0))
                            .collect::<Vec<f64>>(),
                    )
                });
                let cutoff = rng.gen_range(0f64..200.0);
                let band = match rng.gen_range(0usize..3) {
                    0 => BandPolicy::None,
                    1 => BandPolicy::Fixed(rng.gen_range(0usize..4)),
                    _ => BandPolicy::adaptive(),
                };
                (items, cutoff, band)
            },
            |(items, cutoff, band)| {
                let engine = PrunedPairwise::new(*cutoff).with_band(*band);
                let (pruned, stats) = engine.matrix2_with_stats(items);
                let full = full_matrix2(items, *band);
                let mut accounted = 0;
                for i in 0..items.len() {
                    for j in i + 1..items.len() {
                        accounted += 1;
                        if full[i][j] <= *cutoff {
                            prop_assert!(
                                pruned[i][j].to_bits() == full[i][j].to_bits(),
                                "kept pair ({i},{j}) drifted: {} vs {}",
                                pruned[i][j],
                                full[i][j]
                            );
                        } else if pruned[i][j].is_infinite() {
                            // Pruned: the full value really is above cutoff
                            // (checked by the branch condition already).
                        } else {
                            // Completed above-cutoff pairs keep exactness.
                            prop_assert!(pruned[i][j].to_bits() == full[i][j].to_bits());
                        }
                    }
                }
                prop_assert_eq!(stats.pairs, accounted as u64);
                prop_assert_eq!(
                    stats.pairs,
                    stats.lb_kim_pruned
                        + stats.lb_keogh_pruned
                        + stats.early_abandoned
                        + stats.full_evals
                );
                Ok(())
            },
        );
    }

    #[test]
    fn infinite_cutoff_never_prunes() {
        let items: Vec<(Vec<f64>, Vec<f64>)> = (0..5)
            .map(|i| {
                let base = i as f64 * 100.0;
                (vec![base, base + 1.0], vec![base, base + 2.0])
            })
            .collect();
        let engine = PrunedPairwise::new(f64::INFINITY);
        let (m, stats) = engine.matrix2_with_stats(&items);
        assert_eq!(stats.lb_kim_pruned, 0);
        assert_eq!(stats.lb_keogh_pruned, 0);
        assert_eq!(stats.early_abandoned, 0);
        assert_eq!(stats.full_evals, stats.pairs);
        assert_eq!(stats.prune_rate(), 0.0);
        assert!(m[0][1].is_finite());
    }

    #[test]
    fn sparse_cutoff_prunes_far_pairs() {
        let items: Vec<(Vec<f64>, Vec<f64>)> = (0..6)
            .map(|i| {
                let base = i as f64 * 50.0;
                (vec![base, base + 1.0, base], vec![base, base, base])
            })
            .collect();
        let (m, stats) = PrunedPairwise::new(1.0).matrix2_with_stats(&items);
        assert!(stats.lb_kim_pruned > 0, "{stats:?}");
        assert!(stats.full_evals < stats.pairs);
        assert!(stats.prune_rate() > 0.0);
        assert_eq!(m[0][5], f64::INFINITY);
        assert_eq!(m[0][0], 0.0);
    }

    #[test]
    fn ragged_items_fall_back_to_kim_without_panicking() {
        // Different lengths per item: LB_Keogh would panic if consulted.
        let items = vec![
            (vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 0.1, 0.2, 0.3]),
            (vec![0.0, 1.0], vec![0.0, 0.1]),
            (vec![500.0], vec![500.0]),
            (Vec::new(), Vec::new()),
        ];
        let (m, stats) = PrunedPairwise::new(10.0).matrix2_with_stats(&items);
        assert_eq!(stats.lb_keogh_pruned, 0, "ragged pairs must skip keogh");
        // The far singleton is kim-pruned, the near ragged pair kept.
        assert!(m[0][1].is_finite());
        assert_eq!(m[0][2], f64::INFINITY);
        // Empty-vs-nonempty pairs follow the DTW convention (infinitely
        // far); empty-vs-empty would be distance 0 — callers that want
        // inactive items apart must mask that themselves (AG-TR does).
        assert_eq!(m[0][3], f64::INFINITY);
    }

    #[test]
    fn thread_count_does_not_change_matrix_or_stats() {
        let items: Vec<(Vec<f64>, Vec<f64>)> = (0..40)
            .map(|i| {
                let base = (i % 7) as f64 * 3.0;
                (
                    (0..12).map(|t| base + (t as f64 * 0.4).sin()).collect(),
                    (0..12).map(|t| base + t as f64 * 0.01).collect(),
                )
            })
            .collect();
        let engine = PrunedPairwise::new(2.0);
        set_max_threads(1);
        let (m1, s1) = engine.matrix2_with_stats(&items);
        set_max_threads(4);
        let (m4, s4) = engine.matrix2_with_stats(&items);
        set_max_threads(0);
        assert_eq!(s1, s4);
        for (r1, r4) in m1.iter().zip(&m4) {
            for (a, b) in r1.iter().zip(r4) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn edges2_over_the_full_triangle_matches_matrix2() {
        use srtd_runtime::rng::SeedableRng;
        let mut rng = srtd_runtime::rng::StdRng::seed_from_u64(42);
        let items: Vec<(Vec<f64>, Vec<f64>)> = (0..20)
            .map(|_| {
                let len = rng.gen_range(0usize..9);
                (
                    (0..len).map(|_| rng.gen_range(-4f64..4.0)).collect(),
                    (0..len).map(|_| rng.gen_range(-4f64..4.0)).collect(),
                )
            })
            .collect();
        let engine = PrunedPairwise::new(3.0);
        let (matrix, mstats) = engine.matrix2_with_stats(&items);
        let pairs = triangle_pairs(items.len());
        let (edges, estats) = engine.edges2_with_stats(&items, &pairs);
        assert_eq!(mstats, estats);
        // Every finite off-diagonal entry appears as an edge, bitwise.
        let mut expected = Vec::new();
        for (i, row) in matrix.iter().enumerate() {
            for (j, d) in row.iter().enumerate() {
                if j > i && d.is_finite() {
                    expected.push((i, j, *d));
                }
            }
        }
        assert_eq!(edges.len(), expected.len());
        for (got, want) in edges.iter().zip(&expected) {
            assert_eq!((got.0, got.1), (want.0, want.1));
            assert_eq!(got.2.to_bits(), want.2.to_bits());
        }
    }

    #[test]
    fn edges2_visits_only_the_candidate_pairs() {
        let items = vec![
            (vec![0.0, 0.1], vec![0.0, 0.1]),
            (vec![0.0, 0.2], vec![0.0, 0.2]),
            (vec![0.0, 0.3], vec![0.0, 0.3]),
        ];
        let engine = PrunedPairwise::new(5.0);
        let (edges, stats) = engine.edges2_with_stats(&items, &[(0, 2)]);
        assert_eq!(stats.pairs, 1);
        assert_eq!(edges.len(), 1);
        assert_eq!((edges[0].0, edges[0].1), (0, 2));
        let (none, empty_stats) = engine.edges2_with_stats(&items, &[]);
        assert!(none.is_empty());
        assert_eq!(empty_stats, PruneStats::default());
    }

    #[test]
    fn band_policy_rules() {
        assert_eq!(BandPolicy::None.band_for(10, 500), None);
        assert_eq!(BandPolicy::Fixed(3).band_for(10, 500), Some(3));
        let adaptive = BandPolicy::adaptive();
        assert_eq!(adaptive.band_for(10, 20), None, "short series unbanded");
        assert_eq!(adaptive.band_for(64, 64), Some(16), "floor applies");
        assert_eq!(adaptive.band_for(100, 400), Some(50), "len/8 of the longer");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn nan_cutoff_rejected() {
        PrunedPairwise::new(f64::NAN);
    }
}
