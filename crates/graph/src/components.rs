//! Connected-component discovery via iterative depth-first search.

use crate::Graph;

/// The result of labeling every node of a [`Graph`] with its connected
/// component.
///
/// Component ids are dense (`0..len()`) and assigned in increasing order of
/// the smallest node index in each component, which makes results
/// deterministic and easy to assert on.
///
/// # Examples
///
/// ```
/// use srtd_graph::Graph;
///
/// let g = Graph::from_edges(5, [(0, 3, 1.0), (1, 2, 1.0)]);
/// let labeling = g.connected_components();
/// assert_eq!(labeling.len(), 3);
/// assert_eq!(labeling.component_of(0), labeling.component_of(3));
/// assert_ne!(labeling.component_of(0), labeling.component_of(4));
/// assert_eq!(labeling.members(labeling.component_of(1)), &[1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentLabeling {
    labels: Vec<usize>,
    members: Vec<Vec<usize>>,
}

impl ComponentLabeling {
    /// Runs iterative DFS over the whole graph.
    pub(crate) fn from_graph(g: &Graph) -> Self {
        const UNVISITED: usize = usize::MAX;
        let n = g.node_count();
        let mut labels = vec![UNVISITED; n];
        let mut members: Vec<Vec<usize>> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        for start in 0..n {
            if labels[start] != UNVISITED {
                continue;
            }
            let comp = members.len();
            members.push(Vec::new());
            labels[start] = comp;
            stack.push(start);
            while let Some(u) = stack.pop() {
                members[comp].push(u);
                for nb in g.neighbors(u) {
                    if labels[nb.node] == UNVISITED {
                        labels[nb.node] = comp;
                        stack.push(nb.node);
                    }
                }
            }
            members[comp].sort_unstable();
        }
        Self { labels, members }
    }

    /// Labels the components of `n` nodes connected by an unweighted edge
    /// list — the batch-rebuild counterpart (and test oracle) of driving a
    /// [`crate::UnionFind`] incrementally with the same edges.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        Self::from_graph(&Graph::from_edges(
            n,
            edges.into_iter().map(|(u, v)| (u, v, 1.0)),
        ))
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the underlying graph had no nodes.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The component id of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn component_of(&self, node: usize) -> usize {
        self.labels[node]
    }

    /// The sorted member list of component `comp`.
    ///
    /// # Panics
    ///
    /// Panics if `comp >= self.len()`.
    pub fn members(&self, comp: usize) -> &[usize] {
        &self.members[comp]
    }

    /// Per-node component labels, indexed by node.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Consumes the labeling and returns the component member lists.
    pub fn into_groups(self) -> Vec<Vec<usize>> {
        self.members
    }

    /// Iterates over the component member lists.
    pub fn iter(&self) -> impl Iterator<Item = &[usize]> {
        self.members.iter().map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Graph, UnionFind};
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert, prop_assert_eq};

    #[test]
    fn isolated_nodes_are_singletons() {
        let g = Graph::new(3);
        let c = g.connected_components();
        assert_eq!(c.len(), 3);
        for i in 0..3 {
            assert_eq!(c.members(i), &[i]);
        }
    }

    #[test]
    fn from_edges_matches_the_graph_path() {
        use crate::ComponentLabeling;
        let g = Graph::from_edges(5, [(0, 3, 1.0), (1, 2, 1.0)]);
        let via_graph = g.connected_components();
        let via_edges = ComponentLabeling::from_edges(5, [(0, 3), (1, 2)]);
        assert_eq!(via_graph, via_edges);
    }

    #[test]
    fn chain_is_one_component() {
        let g = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let c = g.connected_components();
        assert_eq!(c.len(), 1);
        assert_eq!(c.members(0), &[0, 1, 2, 3]);
    }

    #[test]
    fn component_ids_ordered_by_smallest_member() {
        let g = Graph::from_edges(6, [(4, 5, 1.0), (1, 2, 1.0)]);
        let c = g.connected_components();
        // Components: {0}, {1,2}, {3}, {4,5} in that id order.
        assert_eq!(c.members(0), &[0]);
        assert_eq!(c.members(1), &[1, 2]);
        assert_eq!(c.members(2), &[3]);
        assert_eq!(c.members(3), &[4, 5]);
    }

    #[test]
    fn labels_and_members_agree() {
        let g = Graph::from_edges(5, [(0, 4, 1.0), (2, 3, 1.0)]);
        let c = g.connected_components();
        for (node, &label) in c.labels().iter().enumerate() {
            assert!(c.members(label).contains(&node));
        }
    }

    #[test]
    fn paper_ag_ts_example_components() {
        // Fig. 3(d): nodes 1, 4', 4'', 4''' form one component; 2 and 3 are
        // isolated. Index map: 1->0, 2->1, 3->2, 4'->3, 4''->4, 4'''->5.
        let edges = [
            (0, 3, 1.8),
            (0, 4, 1.8),
            (0, 5, 1.8),
            (3, 4, 1.8),
            (3, 5, 1.8),
            (4, 5, 1.8),
        ];
        let g = Graph::from_edges(6, edges);
        let c = g.connected_components();
        assert_eq!(c.len(), 3);
        assert_eq!(c.members(c.component_of(0)), &[0, 3, 4, 5]);
        assert_eq!(c.members(c.component_of(1)), &[1]);
        assert_eq!(c.members(c.component_of(2)), &[2]);
    }

    /// DFS components must match a union-find oracle on random graphs.
    #[test]
    fn matches_union_find_oracle() {
        prop::check(
            |rng| {
                (
                    rng.gen_range(1usize..40),
                    prop::vec_with(rng, 0..120, |r| {
                        (r.gen_range(0usize..40), r.gen_range(0usize..40))
                    }),
                )
            },
            |(n, raw_edges)| {
                let n = *n;
                let edges: Vec<(usize, usize, f64)> = raw_edges
                    .iter()
                    .filter(|&&(u, v)| u < n && v < n)
                    .map(|&(u, v)| (u, v, 1.0))
                    .collect();
                let g = Graph::from_edges(n, edges.iter().copied());
                let c = g.connected_components();
                let mut uf = UnionFind::new(n);
                for &(u, v, _) in &edges {
                    uf.union(u, v);
                }
                prop_assert_eq!(c.len(), uf.set_count());
                for u in 0..n {
                    for v in 0..n {
                        prop_assert_eq!(c.component_of(u) == c.component_of(v), uf.connected(u, v));
                    }
                }
                Ok(())
            },
        );
    }

    /// Every node appears in exactly one component (partition property).
    #[test]
    fn members_partition_nodes() {
        prop::check(
            |rng| {
                (
                    rng.gen_range(1usize..30),
                    prop::vec_with(rng, 0..60, |r| {
                        (r.gen_range(0usize..30), r.gen_range(0usize..30))
                    }),
                )
            },
            |(n, raw_edges)| {
                let n = *n;
                let edges = raw_edges
                    .iter()
                    .filter(|&&(u, v)| u < n && v < n)
                    .map(|&(u, v)| (u, v, 1.0));
                let g = Graph::from_edges(n, edges);
                let c = g.connected_components();
                let mut seen = vec![0usize; n];
                for comp in c.iter() {
                    for &node in comp {
                        seen[node] += 1;
                    }
                }
                prop_assert!(seen.iter().all(|&s| s == 1));
                Ok(())
            },
        );
    }
}
