//! The account × task report matrix.

use srtd_runtime::json::{Json, ToJson};

/// One sensing report: account `account` claims `value` for task `task`
/// at time `timestamp` (seconds from the campaign start).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Report {
    /// Reporting account index.
    pub account: usize,
    /// Task index.
    pub task: usize,
    /// Claimed numeric value (e.g. Wi-Fi RSSI in dBm).
    pub value: f64,
    /// Submission timestamp in seconds.
    pub timestamp: f64,
}

/// All reports of a sensing campaign, indexed both by account and by task.
///
/// Matches the paper's model: `m` tasks, accounts `0..n`, and at most one
/// report per (account, task) pair ("each account is allowed to submit at
/// most one data for one task").
///
/// # Examples
///
/// ```
/// use srtd_truth::SensingData;
///
/// let mut data = SensingData::new(2);
/// data.add_report(0, 0, -80.0, 12.0);
/// data.add_report(0, 1, -75.0, 60.0);
/// data.add_report(1, 1, -74.0, 30.0);
/// assert_eq!(data.num_accounts(), 2);
/// assert_eq!(data.tasks_of(0), &[0, 1]);
/// assert_eq!(data.reports_for_task(1).len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SensingData {
    num_tasks: usize,
    reports: Vec<Report>,
    by_account: Vec<Vec<usize>>,
    by_task: Vec<Vec<usize>>,
}

impl SensingData {
    /// Creates an empty campaign with `num_tasks` tasks.
    pub fn new(num_tasks: usize) -> Self {
        Self {
            num_tasks,
            reports: Vec::new(),
            by_account: Vec::new(),
            by_task: vec![Vec::new(); num_tasks],
        }
    }

    /// Number of tasks `m`.
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// Number of accounts (highest account index seen + 1).
    pub fn num_accounts(&self) -> usize {
        self.by_account.len()
    }

    /// Total number of reports.
    pub fn num_reports(&self) -> usize {
        self.reports.len()
    }

    /// Returns `true` if no report has been added.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Ensures the campaign tracks at least `n` accounts, adding trailing
    /// report-less accounts if needed.
    ///
    /// Filtering operations (e.g. budgeted selection) may drop every
    /// report of the highest-indexed accounts; this keeps account-indexed
    /// structures (fingerprints, owner labels) aligned.
    pub fn reserve_accounts(&mut self, n: usize) {
        if n > self.by_account.len() {
            self.by_account.resize_with(n, Vec::new);
        }
    }

    /// Adds a report.
    ///
    /// # Panics
    ///
    /// Panics if `task >= num_tasks`, if the value or timestamp is not
    /// finite, or if the account already reported this task (the paper's
    /// one-report-per-task rule).
    pub fn add_report(&mut self, account: usize, task: usize, value: f64, timestamp: f64) {
        assert!(
            task < self.num_tasks,
            "task {task} out of range for {} tasks",
            self.num_tasks
        );
        assert!(value.is_finite(), "report value must be finite");
        assert!(timestamp.is_finite(), "timestamp must be finite");
        if account >= self.by_account.len() {
            self.by_account.resize_with(account + 1, Vec::new);
        }
        assert!(
            !self.by_account[account]
                .iter()
                .any(|&r| self.reports[r].task == task),
            "account {account} already reported task {task}"
        );
        let idx = self.reports.len();
        self.reports.push(Report {
            account,
            task,
            value,
            timestamp,
        });
        self.by_account[account].push(idx);
        self.by_task[task].push(idx);
    }

    /// All reports in insertion order.
    pub fn reports(&self) -> &[Report] {
        &self.reports
    }

    /// The reports account `account` submitted, in insertion order.
    ///
    /// Accounts that never reported return an empty slice.
    pub fn account_reports(&self, account: usize) -> impl Iterator<Item = &Report> {
        self.by_account
            .get(account)
            .into_iter()
            .flatten()
            .map(|&i| &self.reports[i])
    }

    /// The sorted task indices account `account` accomplished (its `T_i`).
    pub fn tasks_of(&self, account: usize) -> Vec<usize> {
        let mut tasks: Vec<usize> = self.account_reports(account).map(|r| r.task).collect();
        tasks.sort_unstable();
        tasks
    }

    /// The reports submitted for `task` (the paper's `U_j` with values).
    ///
    /// # Panics
    ///
    /// Panics if `task >= num_tasks`.
    pub fn reports_for_task(&self, task: usize) -> Vec<&Report> {
        assert!(task < self.num_tasks, "task {task} out of range");
        self.by_task[task]
            .iter()
            .map(|&i| &self.reports[i])
            .collect()
    }

    /// The account's reports ordered by timestamp — its trajectory, as
    /// AG-TR consumes it.
    pub fn trajectory_of(&self, account: usize) -> Vec<Report> {
        let mut reports: Vec<Report> = self.account_reports(account).copied().collect();
        reports.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));
        reports
    }

    /// Per-task standard deviation of claimed values (used by CRH's loss
    /// normalization); `None` for tasks with no reports.
    pub fn task_value_std(&self) -> Vec<Option<f64>> {
        (0..self.num_tasks)
            .map(|t| {
                let vals: Vec<f64> = self.by_task[t]
                    .iter()
                    .map(|&i| self.reports[i].value)
                    .collect();
                if vals.is_empty() {
                    return None;
                }
                let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
                Some(var.sqrt())
            })
            .collect()
    }

    /// Splits the campaign into per-task centers (the claim means) and a
    /// copy whose values are residuals from those centers.
    ///
    /// Iterative algorithms run on the residuals and add the centers back:
    /// the fixed points are unchanged, but the arithmetic becomes
    /// independent of a global offset (useful both numerically — dBm
    /// values around −80 waste mantissa on the offset — and for exact
    /// translation equivariance).
    pub fn centered(&self) -> (SensingData, Vec<Option<f64>>) {
        let centers: Vec<Option<f64>> = (0..self.num_tasks)
            .map(|t| {
                let reports = self.reports_for_task(t);
                (!reports.is_empty())
                    .then(|| reports.iter().map(|r| r.value).sum::<f64>() / reports.len() as f64)
            })
            .collect();
        let mut centered = SensingData::new(self.num_tasks);
        for r in &self.reports {
            let c = centers[r.task].expect("reported task has a center");
            centered.add_report(r.account, r.task, r.value - c, r.timestamp);
        }
        (centered, centers)
    }

    /// The activeness `α_i = |T_i| / m` of an account (Eq. 9).
    pub fn activeness(&self, account: usize) -> f64 {
        if self.num_tasks == 0 {
            return 0.0;
        }
        self.account_reports(account).count() as f64 / self.num_tasks as f64
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        Json::obj([
            ("account", self.account.to_json()),
            ("task", self.task.to_json()),
            ("value", self.value.to_json()),
            ("timestamp", self.timestamp.to_json()),
        ])
    }
}

impl ToJson for SensingData {
    /// Encodes the semantic content — task count and the report list; the
    /// per-account and per-task indexes are derivable and omitted.
    fn to_json(&self) -> Json {
        Json::obj([
            ("num_tasks", self.num_tasks.to_json()),
            ("reports", self.reports.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_stay_consistent() {
        let mut d = SensingData::new(3);
        d.add_report(2, 1, 5.0, 10.0);
        d.add_report(0, 1, 6.0, 11.0);
        d.add_report(0, 2, 7.0, 12.0);
        assert_eq!(d.num_accounts(), 3);
        assert_eq!(d.num_reports(), 3);
        assert_eq!(d.tasks_of(0), vec![1, 2]);
        assert_eq!(d.tasks_of(1), Vec::<usize>::new());
        assert_eq!(d.reports_for_task(1).len(), 2);
        assert_eq!(d.reports_for_task(0).len(), 0);
    }

    #[test]
    fn trajectory_sorted_by_time() {
        let mut d = SensingData::new(3);
        d.add_report(0, 2, 1.0, 30.0);
        d.add_report(0, 0, 2.0, 10.0);
        d.add_report(0, 1, 3.0, 20.0);
        let traj = d.trajectory_of(0);
        let tasks: Vec<usize> = traj.iter().map(|r| r.task).collect();
        assert_eq!(tasks, vec![0, 1, 2]);
    }

    #[test]
    fn activeness_matches_eq9() {
        let mut d = SensingData::new(4);
        d.add_report(0, 0, 1.0, 0.0);
        d.add_report(0, 3, 1.0, 1.0);
        assert_eq!(d.activeness(0), 0.5);
        assert_eq!(d.activeness(7), 0.0);
    }

    #[test]
    fn task_value_std_handles_empty_tasks() {
        let mut d = SensingData::new(2);
        d.add_report(0, 0, 2.0, 0.0);
        d.add_report(1, 0, 4.0, 0.0);
        let stds = d.task_value_std();
        assert!((stds[0].unwrap() - 1.0).abs() < 1e-12);
        assert!(stds[1].is_none());
    }

    #[test]
    #[should_panic(expected = "already reported")]
    fn duplicate_report_panics() {
        let mut d = SensingData::new(1);
        d.add_report(0, 0, 1.0, 0.0);
        d.add_report(0, 0, 2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_task_panics() {
        let mut d = SensingData::new(1);
        d.add_report(0, 1, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_value_panics() {
        let mut d = SensingData::new(1);
        d.add_report(0, 0, f64::NAN, 0.0);
    }
}
