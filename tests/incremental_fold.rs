//! Equivalence regression for the incremental data plane: folding report
//! batches into warm CSR indexes must be bit-identical to building the
//! same indexes from scratch over the same report sequence — for every
//! task/account index run, and for every derived statistic downstream of
//! them (`task_means`, `task_value_std`, the centered residual copy).
//!
//! The warm side touches its accessors between folds (so each fold
//! relocates existing runs in place); the cold side never reads until the
//! end (so its first accessor touch pays one full counting-sort build).
//! Any divergence between the two paths is an index-corruption bug.

use sybil_td::runtime::parallel::set_max_threads;
use sybil_td::runtime::rng::{Rng, SeedableRng, StdRng};
use sybil_td::truth::{Report, SensingData};

const TASKS: usize = 120;

/// A deterministic stream of report batches. Batch 0 is the initial
/// campaign; later batches mix reports from existing accounts (new tasks
/// only — duplicates are rejected by `add_report`) with accounts that did
/// not exist when the indexes were first built.
fn batches(seed: u64) -> Vec<Vec<Report>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    // (first account, one-past-last account) per batch; ranges overlap so
    // folds hit both existing buckets and freshly reserved ones.
    for (lo, hi) in [(0usize, 30usize), (10, 38), (0, 45), (40, 52)] {
        let mut batch = Vec::new();
        for a in lo..hi {
            for t in 0..TASKS {
                if rng.gen_range(0f64..1.0) >= 0.2 || !seen.insert((a, t)) {
                    continue;
                }
                batch.push(Report {
                    account: a,
                    task: t,
                    value: (t as f64 * 0.31).sin() * 15.0 - 65.0 + rng.gen_range(-2f64..2.0),
                    timestamp: t as f64 * 5.0 + a as f64 * 0.01,
                });
            }
        }
        out.push(batch);
    }
    out
}

fn max_account(batch: &[Report]) -> usize {
    batch.iter().map(|r| r.account).max().unwrap_or(0)
}

/// Every observable surface of the two datasets must match bit for bit.
fn assert_bitwise_equivalent(warm: &SensingData, cold: &SensingData) {
    assert_eq!(warm.num_tasks(), cold.num_tasks());
    assert_eq!(warm.num_accounts(), cold.num_accounts());
    assert_eq!(warm.num_reports(), cold.num_reports());
    assert_eq!(warm.reports(), cold.reports());
    for t in 0..warm.num_tasks() {
        assert_eq!(
            warm.task_report_indices(t),
            cold.task_report_indices(t),
            "task {t} index run diverged"
        );
    }
    for a in 0..warm.num_accounts() {
        assert_eq!(
            warm.account_report_indices(a),
            cold.account_report_indices(a),
            "account {a} index run diverged"
        );
    }

    let means_w = warm.task_means();
    let means_c = cold.task_means();
    let std_w = warm.task_value_std();
    let std_c = cold.task_value_std();
    for t in 0..warm.num_tasks() {
        assert_eq!(
            means_w[t].map(f64::to_bits),
            means_c[t].map(f64::to_bits),
            "task {t} mean diverged"
        );
        assert_eq!(
            std_w[t].map(f64::to_bits),
            std_c[t].map(f64::to_bits),
            "task {t} value std diverged"
        );
    }

    let (resid_w, baseline_w) = warm.centered();
    let (resid_c, baseline_c) = cold.centered();
    for t in 0..warm.num_tasks() {
        assert_eq!(
            baseline_w[t].map(f64::to_bits),
            baseline_c[t].map(f64::to_bits)
        );
    }
    for (rw, rc) in resid_w.reports().iter().zip(resid_c.reports()) {
        assert_eq!(rw.value.to_bits(), rc.value.to_bits());
        assert_eq!(rw.timestamp.to_bits(), rc.timestamp.to_bits());
    }
}

#[test]
fn incremental_folds_match_from_scratch_rebuild() {
    for threads in [1usize, 4] {
        set_max_threads(threads);
        let stream = batches(7);

        // Warm path: fold each batch into live indexes, touching every
        // accessor between folds so the next fold works against a built
        // (then generation-invalidated) cache.
        let mut warm = SensingData::new(TASKS);
        // Cold path: identical report sequence, caches untouched until
        // the final comparison forces one from-scratch build.
        let mut cold = SensingData::new(TASKS);

        for batch in &stream {
            let need = max_account(batch) + 1;
            if need > warm.num_accounts() {
                warm.reserve_accounts(need);
                cold.reserve_accounts(need);
            }
            warm.fold_batch(batch);
            cold.fold_batch(batch);
            // Force the warm side's caches to exist so the *next* fold
            // exercises the incremental relocation path, and check the
            // fold result against a rebuild at every generation.
            let rebuilt: SensingData = {
                let mut d = SensingData::new(TASKS);
                d.reserve_accounts(warm.num_accounts());
                d.fold_batch(warm.reports().to_vec().as_slice());
                d
            };
            assert_bitwise_equivalent(&warm, &rebuilt);
        }

        assert!(warm.generation() > 0);
        assert_eq!(warm.generation(), cold.generation());
        assert_bitwise_equivalent(&warm, &cold);
    }
    set_max_threads(0);
}
