//! Shared moment and summary statistics.
//!
//! These helpers back both the temporal features (moments of the raw
//! signal) and the spectral shape features (moments of the magnitude
//! distribution over frequency). All functions define sensible values for
//! degenerate inputs (empty or constant signals) so that fingerprinting
//! never produces NaN feature vectors.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; `0.0` for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; `0.0` for slices shorter than 2.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Returns `true` when the spread is pure floating-point noise relative to
/// the signal magnitude, so standardized moments are meaningless.
fn effectively_constant(sd: f64, m: f64) -> bool {
    sd <= 1e3 * f64::EPSILON * m.abs().max(1.0)
}

/// Sample skewness (third standardized moment); `0.0` for constant or
/// too-short signals.
pub fn skewness(xs: &[f64]) -> f64 {
    let sd = std_dev(xs);
    let m = mean(xs);
    if xs.len() < 2 || effectively_constant(sd, m) {
        return 0.0;
    }
    let m3 = xs.iter().map(|x| (x - m).powi(3)).sum::<f64>() / xs.len() as f64;
    m3 / sd.powi(3)
}

/// Kurtosis (fourth standardized moment, *not* excess); `3.0` (the normal
/// value) for constant or too-short signals so that flat streams do not
/// register as spiky.
pub fn kurtosis(xs: &[f64]) -> f64 {
    let sd = std_dev(xs);
    let m = mean(xs);
    if xs.len() < 2 || effectively_constant(sd, m) {
        return 3.0;
    }
    let m4 = xs.iter().map(|x| (x - m).powi(4)).sum::<f64>() / xs.len() as f64;
    m4 / sd.powi(4)
}

/// Root mean square; `0.0` for an empty slice.
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Weighted mean of `values` with non-negative `weights`.
///
/// Returns `0.0` when the weights sum to zero.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(
        values.len(),
        weights.len(),
        "values/weights length mismatch"
    );
    let wsum: f64 = weights.iter().sum();
    if wsum == 0.0 {
        return 0.0;
    }
    values.iter().zip(weights).map(|(v, w)| v * w).sum::<f64>() / wsum
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert};

    #[test]
    fn mean_and_variance_of_known_data() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(skewness(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(kurtosis(&[5.0, 5.0, 5.0]), 3.0);
        assert_eq!(rms(&[]), 0.0);
    }

    #[test]
    fn symmetric_data_has_zero_skew() {
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&xs).abs() < 1e-12);
    }

    #[test]
    fn right_tail_gives_positive_skew() {
        let xs = [0.0, 0.0, 0.0, 0.0, 10.0];
        assert!(skewness(&xs) > 0.0);
    }

    #[test]
    fn weighted_mean_matches_plain_mean_for_equal_weights() {
        let xs = [1.0, 2.0, 3.0];
        assert!((weighted_mean(&xs, &[1.0, 1.0, 1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(weighted_mean(&xs, &[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn weighted_mean_pulls_toward_heavy_point() {
        let v = weighted_mean(&[0.0, 10.0], &[1.0, 3.0]);
        assert!((v - 7.5).abs() < 1e-12);
    }

    #[test]
    fn rms_ge_abs_mean() {
        prop::check(
            |rng| prop::vec_with(rng, 1..100, |r| r.gen_range(-1e3f64..1e3)),
            |xs| {
                prop_assert!(rms(xs) + 1e-9 >= mean(xs).abs());
                Ok(())
            },
        );
    }

    #[test]
    fn variance_shift_invariant() {
        prop::check(
            |rng| {
                (
                    prop::vec_with(rng, 2..100, |r| r.gen_range(-1e3f64..1e3)),
                    rng.gen_range(-1e3f64..1e3),
                )
            },
            |(xs, shift)| {
                let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
                prop_assert!((variance(xs) - variance(&shifted)).abs() < 1e-6);
                Ok(())
            },
        );
    }

    #[test]
    fn kurtosis_at_least_one() {
        prop::check(
            |rng| prop::vec_with(rng, 2..100, |r| r.gen_range(-1e3f64..1e3)),
            |xs| {
                // For any distribution, kurtosis >= 1 (>= skewness² + 1).
                prop_assert!(kurtosis(xs) >= 1.0 - 1e-9);
                Ok(())
            },
        );
    }

    #[test]
    fn weighted_mean_in_hull() {
        prop::check(
            |rng| {
                prop::vec_with(rng, 1..50, |r| {
                    (r.gen_range(-1e3f64..1e3), r.gen_range(0.0f64..10.0))
                })
            },
            |pts| {
                let values: Vec<f64> = pts.iter().map(|p| p.0).collect();
                let weights: Vec<f64> = pts.iter().map(|p| p.1).collect();
                if weights.iter().sum::<f64>() <= 0.0 {
                    return Ok(()); // degenerate draw, nothing to check
                }
                let wm = weighted_mean(&values, &weights);
                let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(wm >= lo - 1e-9 && wm <= hi + 1e-9);
                Ok(())
            },
        );
    }
}
