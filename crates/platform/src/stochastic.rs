//! Deterministic stochastic auditing (QRES-style spot checks).
//!
//! Grouping catches Sybil rings that *behave* alike; an adaptive attacker
//! can jitter its replays past φ, mimic honest task sets, and camouflage
//! its values inside the honest envelope — at which point no behavioural
//! signal fires. The complementary defense is the one QRES calls a
//! Class-C mitigation: every epoch the platform spot-checks a few
//! accounts against *trusted reference* measurements (probe devices,
//! calibrated sensors — ground truth in simulation) and convicts an
//! account after `k` failed audits.
//!
//! Two properties matter and both are pinned by tests:
//!
//! * **Deterministic** — target selection is a pure function of
//!   `(policy seed, epoch, data generation)`, chained through
//!   [`SplitMix64`], so replays and thread counts cannot change who gets
//!   audited. No global RNG, no wall clock.
//! * **Unpredictable across epochs** — the epoch index is folded into the
//!   seed chain, so an attacker who saw every past audit still cannot
//!   tell which accounts are audited next (short of knowing the secret
//!   policy seed).
//!
//! Audits compare reports against the trusted reference, *not* against
//! the published truth estimates: once a ring has captured a task's
//! estimate, deviation-from-estimate would convict the honest minority
//! instead of the attacker.

use srtd_runtime::obs;
use srtd_runtime::rng::{Rng, SplitMix64};
use srtd_truth::SensingData;
use std::collections::BTreeSet;

/// Policy knobs for the per-epoch stochastic audit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditPolicy {
    /// Secret seed of the target-selection chain. Everything the auditor
    /// does is deterministic in it.
    pub seed: u64,
    /// Accounts spot-checked per epoch (clamped to the account count).
    pub targets_per_epoch: usize,
    /// A report fails its spot check when it deviates from the trusted
    /// reference by more than this (dBm for the RSSI campaign). Must
    /// exceed the honest noise envelope — bias σ 1.5 + noise σ ≤ 3.5
    /// puts honest deviations within ~12 dBm at 3σ-ish tails.
    pub tolerance: f64,
    /// Deviant reports an account needs in one epoch for the audit to
    /// count as failed (≥ 1; 2 filters one-off glitches).
    pub min_deviant: usize,
    /// Failed audits before conviction (the `k` of the k-failure
    /// machine).
    pub conviction_failures: u32,
}

impl Default for AuditPolicy {
    fn default() -> Self {
        Self {
            seed: 0,
            targets_per_epoch: 4,
            tolerance: 12.0,
            min_deviant: 2,
            conviction_failures: 2,
        }
    }
}

impl AuditPolicy {
    /// Replaces the selection seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the policy.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive tolerance, zero targets, zero
    /// `min_deviant`, or zero `conviction_failures`.
    pub fn validate(&self) {
        assert!(
            self.tolerance.is_finite() && self.tolerance > 0.0,
            "audit tolerance must be positive, got {}",
            self.tolerance
        );
        assert!(
            self.targets_per_epoch > 0,
            "audits need at least one target"
        );
        assert!(self.min_deviant > 0, "min_deviant must be at least 1");
        assert!(
            self.conviction_failures > 0,
            "conviction needs at least one failure"
        );
    }
}

/// Outcome of one epoch's audit pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochAudit {
    /// Epoch the pass ran in.
    pub epoch: u64,
    /// Accounts spot-checked (sorted).
    pub targets: Vec<usize>,
    /// Targets whose spot check failed this epoch (sorted).
    pub failed: Vec<usize>,
    /// Accounts whose failure count reached `k` this epoch (sorted).
    pub newly_convicted: Vec<usize>,
}

/// The per-account k-failure conviction machine plus the deterministic
/// target selector. One instance lives inside an
/// [`crate::EpochEngine`]; state persists across epochs.
#[derive(Debug, Clone)]
pub struct StochasticAuditor {
    policy: AuditPolicy,
    failures: Vec<u32>,
    convicted_at: Vec<Option<u64>>,
}

impl StochasticAuditor {
    /// Creates an auditor with no failure history.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid (see [`AuditPolicy::validate`]).
    pub fn new(policy: AuditPolicy) -> Self {
        policy.validate();
        Self {
            policy,
            failures: Vec::new(),
            convicted_at: Vec::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &AuditPolicy {
        &self.policy
    }

    /// Deterministic audit-target selection: a uniform `count`-subset of
    /// `0..num_accounts`, derived purely from
    /// `(seed, epoch, generation)` via a chained [`SplitMix64`] (each
    /// stage's output seeds the next, so adjacent epochs or generations
    /// produce decorrelated streams). Sorted; single-threaded by
    /// construction, hence identical under any worker count.
    pub fn select_targets(
        seed: u64,
        epoch: u64,
        generation: u64,
        count: usize,
        num_accounts: usize,
    ) -> Vec<usize> {
        if num_accounts == 0 || count == 0 {
            return Vec::new();
        }
        let count = count.min(num_accounts);
        let mut stage = SplitMix64::new(seed);
        let mut stage = SplitMix64::new(stage.next_u64() ^ epoch);
        let mut rng = SplitMix64::new(stage.next_u64() ^ generation);
        // Floyd's subset sampling: uniform over count-subsets, O(count)
        // draws, and the BTreeSet yields the sorted order for free.
        let mut chosen = BTreeSet::new();
        for j in (num_accounts - count)..num_accounts {
            let t = rng.next_u64_below(j as u64 + 1) as usize;
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }

    /// The targets this auditor would pick for `(epoch, generation)`.
    pub fn targets(&self, epoch: u64, generation: u64, num_accounts: usize) -> Vec<usize> {
        Self::select_targets(
            self.policy.seed,
            epoch,
            generation,
            self.policy.targets_per_epoch,
            num_accounts,
        )
    }

    /// Runs one audit pass: selects targets, spot-checks each target's
    /// reports against the trusted `reference` (`None` marks a task the
    /// platform cannot reference-check), advances the failure counters,
    /// and convicts accounts crossing `k`. Accounts with no reference-
    /// checkable reports pass trivially.
    pub fn audit_epoch(
        &mut self,
        epoch: u64,
        generation: u64,
        data: &SensingData,
        reference: &[Option<f64>],
    ) -> EpochAudit {
        let n = data.num_accounts();
        if self.failures.len() < n {
            self.failures.resize(n, 0);
            self.convicted_at.resize(n, None);
        }
        let targets = self.targets(epoch, generation, n);
        let mut failed = Vec::new();
        let mut newly_convicted = Vec::new();
        for &account in &targets {
            let deviant = data
                .account_reports(account)
                .filter(|r| match reference.get(r.task).copied().flatten() {
                    Some(truth) => (r.value - truth).abs() > self.policy.tolerance,
                    None => false,
                })
                .count();
            if deviant >= self.policy.min_deviant {
                self.failures[account] += 1;
                failed.push(account);
                if self.failures[account] == self.policy.conviction_failures
                    && self.convicted_at[account].is_none()
                {
                    self.convicted_at[account] = Some(epoch);
                    newly_convicted.push(account);
                }
            }
        }
        obs::counter_add("platform.audit.targets", targets.len() as u64);
        obs::counter_add("platform.audit.failures", failed.len() as u64);
        obs::counter_add("platform.audit.convictions", newly_convicted.len() as u64);
        EpochAudit {
            epoch,
            targets,
            failed,
            newly_convicted,
        }
    }

    /// Failed audits recorded for `account` so far.
    pub fn failures(&self, account: usize) -> u32 {
        self.failures.get(account).copied().unwrap_or(0)
    }

    /// Whether `account` has been convicted.
    pub fn is_convicted(&self, account: usize) -> bool {
        self.convicted_at.get(account).is_some_and(|c| c.is_some())
    }

    /// The epoch `account` was convicted in, if any.
    pub fn convicted_epoch(&self, account: usize) -> Option<u64> {
        self.convicted_at.get(account).copied().flatten()
    }

    /// All convicted accounts, sorted.
    pub fn convicted(&self) -> Vec<usize> {
        self.convicted_at
            .iter()
            .enumerate()
            .filter_map(|(a, c)| c.map(|_| a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_with(reports: &[(usize, usize, f64)]) -> SensingData {
        let mut data = SensingData::new(4);
        for (i, &(account, task, value)) in reports.iter().enumerate() {
            data.add_report(account, task, value, i as f64);
        }
        data
    }

    #[test]
    fn selection_is_deterministic_and_sorted() {
        let a = StochasticAuditor::select_targets(7, 3, 11, 4, 20);
        let b = StochasticAuditor::select_targets(7, 3, 11, 4, 20);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(a.iter().all(|&t| t < 20));
    }

    #[test]
    fn different_epochs_generations_and_seeds_decorrelate() {
        let base = StochasticAuditor::select_targets(7, 3, 11, 4, 1000);
        assert_ne!(base, StochasticAuditor::select_targets(7, 4, 11, 4, 1000));
        assert_ne!(base, StochasticAuditor::select_targets(7, 3, 12, 4, 1000));
        assert_ne!(base, StochasticAuditor::select_targets(8, 3, 11, 4, 1000));
    }

    #[test]
    fn selection_clamps_to_population() {
        assert!(StochasticAuditor::select_targets(1, 1, 1, 4, 0).is_empty());
        let all = StochasticAuditor::select_targets(1, 1, 1, 10, 3);
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn selection_is_roughly_uniform() {
        // Every account should be audited eventually: over 400 epochs of
        // 4-of-20 draws each account expects 80 audits; none should be
        // starved or hammered.
        let mut hits = [0usize; 20];
        for epoch in 0..400 {
            for t in StochasticAuditor::select_targets(99, epoch, 5, 4, 20) {
                hits[t] += 1;
            }
        }
        for (account, &h) in hits.iter().enumerate() {
            assert!(
                (40..=120).contains(&h),
                "account {account} audited {h} times"
            );
        }
    }

    #[test]
    fn conviction_fires_at_exactly_k() {
        let policy = AuditPolicy {
            conviction_failures: 3,
            min_deviant: 1,
            targets_per_epoch: 1,
            ..AuditPolicy::default()
        };
        let mut auditor = StochasticAuditor::new(policy);
        // One account, always selected, always deviant.
        let data = data_with(&[(0, 0, -50.0), (0, 1, -50.0)]);
        let reference = vec![Some(-75.0); 4];
        for epoch in 1..=2 {
            let pass = auditor.audit_epoch(epoch, 0, &data, &reference);
            assert_eq!(pass.failed, vec![0]);
            assert!(pass.newly_convicted.is_empty(), "k−1 failures convict");
            assert!(!auditor.is_convicted(0));
        }
        let pass = auditor.audit_epoch(3, 0, &data, &reference);
        assert_eq!(pass.newly_convicted, vec![0], "conviction at exactly k");
        assert_eq!(auditor.convicted_epoch(0), Some(3));
        // Further failures do not re-convict.
        let pass = auditor.audit_epoch(4, 0, &data, &reference);
        assert!(pass.newly_convicted.is_empty());
        assert_eq!(auditor.convicted(), vec![0]);
    }

    #[test]
    fn honest_reports_never_fail() {
        let policy = AuditPolicy {
            min_deviant: 1,
            targets_per_epoch: 2,
            ..AuditPolicy::default()
        };
        let mut auditor = StochasticAuditor::new(policy);
        // Two accounts reporting within tolerance of the reference.
        let data = data_with(&[(0, 0, -73.0), (0, 1, -68.0), (1, 0, -77.0), (1, 2, -80.0)]);
        let reference = vec![Some(-75.0), Some(-70.0), Some(-76.0), None];
        for epoch in 1..=50 {
            let pass = auditor.audit_epoch(epoch, 0, &data, &reference);
            assert!(pass.failed.is_empty());
        }
        assert!(auditor.convicted().is_empty());
    }

    #[test]
    fn unreferenced_tasks_cannot_fail_an_account() {
        let policy = AuditPolicy {
            min_deviant: 1,
            targets_per_epoch: 1,
            ..AuditPolicy::default()
        };
        let mut auditor = StochasticAuditor::new(policy);
        // Wildly deviant values, but only on tasks without a reference.
        let data = data_with(&[(0, 2, -20.0), (0, 3, -20.0)]);
        let reference = vec![Some(-75.0), Some(-75.0), None, None];
        let pass = auditor.audit_epoch(1, 0, &data, &reference);
        assert_eq!(pass.targets, vec![0]);
        assert!(pass.failed.is_empty());
    }

    #[test]
    fn min_deviant_filters_single_glitches() {
        let policy = AuditPolicy {
            min_deviant: 2,
            targets_per_epoch: 1,
            ..AuditPolicy::default()
        };
        let mut auditor = StochasticAuditor::new(policy);
        // One deviant report out of three: below the min_deviant bar.
        let data = data_with(&[(0, 0, -40.0), (0, 1, -71.0), (0, 2, -74.0)]);
        let reference = vec![Some(-75.0); 4];
        let pass = auditor.audit_epoch(1, 0, &data, &reference);
        assert!(pass.failed.is_empty());
    }

    #[test]
    #[should_panic(expected = "audit tolerance")]
    fn bad_tolerance_rejected() {
        StochasticAuditor::new(AuditPolicy {
            tolerance: 0.0,
            ..AuditPolicy::default()
        });
    }
}
