//! Prometheus-style text exposition of a [`Report`], plus a minimal
//! parser used by the round-trip test and by scrape tooling.
//!
//! Rendering rules (pinned by the round-trip test and DESIGN.md §9):
//!
//! * every metric name is prefixed `srtd_` and mangled — each character
//!   outside `[a-zA-Z0-9_]` becomes `_` (so `server.epoch.ingested`
//!   exports as `srtd_server_epoch_ingested`),
//! * counters gain the conventional `_total` suffix,
//! * gauges export under their mangled name unchanged,
//! * histograms export the conventional cumulative series:
//!   `<name>_bucket{le="<bound>"}` per bucket, a `{le="+Inf"}` bucket,
//!   then `<name>_sum` and `<name>_count`,
//! * spans export as two counters, `srtd_span_<name>_count` and
//!   `srtd_span_<name>_duration_ns_total`,
//! * events have no Prometheus shape and are skipped.
//!
//! The output is plain `text/plain; version=0.0.4` exposition: a
//! `# TYPE` comment per family followed by its samples.

use super::report::Report;
use crate::json::Json;
use std::fmt::Write as _;

/// Mangles a dotted metric name into a Prometheus-legal one: characters
/// outside `[a-zA-Z0-9_]` become `_`.
pub fn mangle(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Formats a sample value the way the exposition format expects
/// (shortest-round-trip decimal; non-finite values are unreachable here
/// because histogram sums and gauges come from finite arithmetic).
fn fmt_value(v: f64) -> String {
    if v.is_finite() {
        Json::Num(v).render()
    } else {
        "0".to_string()
    }
}

/// Renders `report` as Prometheus text exposition.
pub fn render(report: &Report) -> String {
    let mut out = String::new();
    for (name, value) in &report.counters {
        let m = format!("srtd_{}_total", mangle(name));
        writeln!(out, "# TYPE {m} counter").expect("string write");
        writeln!(out, "{m} {value}").expect("string write");
    }
    for (name, value) in &report.gauges {
        let m = format!("srtd_{}", mangle(name));
        writeln!(out, "# TYPE {m} gauge").expect("string write");
        writeln!(out, "{m} {}", fmt_value(*value)).expect("string write");
    }
    for h in &report.histograms {
        let m = format!("srtd_{}", mangle(&h.name));
        writeln!(out, "# TYPE {m} histogram").expect("string write");
        let mut cumulative = 0u64;
        for &(bound, count) in &h.buckets {
            cumulative += count;
            if bound.is_finite() {
                writeln!(
                    out,
                    "{m}_bucket{{le=\"{}\"}} {cumulative}",
                    fmt_value(bound)
                )
                .expect("string write");
            }
        }
        writeln!(out, "{m}_bucket{{le=\"+Inf\"}} {}", h.count).expect("string write");
        writeln!(out, "{m}_sum {}", fmt_value(h.sum)).expect("string write");
        writeln!(out, "{m}_count {}", h.count).expect("string write");
    }
    for s in &report.spans {
        let m = format!("srtd_span_{}", mangle(s.name));
        writeln!(out, "# TYPE {m}_count counter").expect("string write");
        writeln!(out, "{m}_count {}", s.count).expect("string write");
        writeln!(out, "# TYPE {m}_duration_ns_total counter").expect("string write");
        writeln!(out, "{m}_duration_ns_total {}", s.total_ns).expect("string write");
    }
    out
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (already mangled, as exported).
    pub name: String,
    /// Label pairs inside `{...}`, in document order; empty when absent.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parses Prometheus text exposition into its samples.
///
/// Accepts the subset [`render`] emits: `# ...` comment lines and
/// `name[{k="v",...}] value` sample lines. Rejects structurally invalid
/// lines with a description, so the round-trip test catches any drift in
/// the renderer.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator: {line:?}", lineno + 1))?;
        let (name, labels) = match name_part.split_once('{') {
            None => (name_part.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unterminated labels: {line:?}", lineno + 1))?;
                let mut labels = Vec::new();
                for pair in body.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("line {}: bad label {pair:?}", lineno + 1))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| format!("line {}: unquoted label {pair:?}", lineno + 1))?;
                    labels.push((k.to_string(), v.to_string()));
                }
                (name.to_string(), labels)
            }
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.starts_with(|c: char| c.is_ascii_digit())
        {
            return Err(format!("line {}: illegal metric name {name:?}", lineno + 1));
        }
        let value = if value_part == "+Inf" {
            f64::INFINITY
        } else {
            value_part
                .parse::<f64>()
                .map_err(|e| format!("line {}: bad value {value_part:?}: {e}", lineno + 1))?
        };
        samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{EventSnapshot, HistogramSnapshot, SpanSnapshot};

    #[test]
    fn mangle_replaces_non_alphanumerics() {
        assert_eq!(mangle("server.epoch.ingested"), "server_epoch_ingested");
        assert_eq!(mangle("http/request-us"), "http_request_us");
        assert_eq!(mangle("already_ok_9"), "already_ok_9");
    }

    #[test]
    fn render_parse_round_trips_every_family() {
        let report = Report {
            counters: vec![("server.epoch.ingested".into(), 20)],
            gauges: vec![("epoch.duration_ns".into(), 1500.0)],
            histograms: vec![HistogramSnapshot {
                name: "server.http.request_us".into(),
                count: 3,
                sum: 42.5,
                buckets: vec![(10.0, 2), (f64::INFINITY, 1)],
            }],
            spans: vec![SpanSnapshot {
                name: "server.epoch",
                count: 2,
                total_ns: 9000,
                min_ns: 4000,
                max_ns: 5000,
            }],
            events: vec![EventSnapshot {
                name: "skipped".into(),
                fields: vec![],
            }],
        };
        let text = render(&report);
        let samples = parse(&text).expect("renderer output must parse");
        let get = |name: &str| -> &Sample {
            samples
                .iter()
                .find(|s| s.name == name && s.labels.is_empty())
                .unwrap_or_else(|| panic!("missing sample {name}\n{text}"))
        };
        assert_eq!(get("srtd_server_epoch_ingested_total").value, 20.0);
        assert_eq!(get("srtd_epoch_duration_ns").value, 1500.0);
        assert_eq!(get("srtd_server_http_request_us_sum").value, 42.5);
        assert_eq!(get("srtd_server_http_request_us_count").value, 3.0);
        assert_eq!(get("srtd_span_server_epoch_count").value, 2.0);
        assert_eq!(
            get("srtd_span_server_epoch_duration_ns_total").value,
            9000.0
        );
        // Cumulative buckets: the finite bucket holds 2, +Inf the total 3.
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == "srtd_server_http_request_us_bucket")
            .collect();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].labels, vec![("le".into(), "10".into())]);
        assert_eq!(buckets[0].value, 2.0);
        assert_eq!(buckets[1].labels, vec![("le".into(), "+Inf".into())]);
        assert_eq!(buckets[1].value, 3.0);
        // Events are not exported.
        assert!(!text.contains("skipped"));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("no_value").is_err());
        assert!(parse("name{unterminated 1").is_err());
        assert!(parse("name{k=v} 1").is_err());
        assert!(parse("bad-name 1").is_err());
        assert!(parse("name nan-ish").is_err());
    }
}
