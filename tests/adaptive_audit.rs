//! End-to-end adaptive-adversary vs stochastic-audit integration.
//!
//! Plants a threshold-evading Sybil ring — camouflaged values inside the
//! honest envelope except on its target tasks, plus replay jitter large
//! enough that AG-TR forms no trajectory edges — and drives the epoch
//! engine with the stochastic audit stage enabled. Grouping alone must
//! miss the ring; the audit must convict every ring account within a
//! bounded number of epochs, with zero honest convictions, and the whole
//! run must be bit-identical under 1 and 4 worker threads.

use sybil_td::core::{AgTr, SybilResistantTd};
use sybil_td::platform::{AuditPolicy, EpochConfig, EpochEngine, EpochSnapshot};
use sybil_td::runtime::parallel::set_max_threads;
use sybil_td::sensing::{
    AttackerSpec, EvasionTactic, FabricationStrategy, Scenario, ScenarioConfig,
};

const MAX_EPOCHS: u64 = 48;

fn ring_scenario() -> Scenario {
    // Camouflaged fabrication (lies only on 40 % of the task set, honest
    // envelope elsewhere) over a jittered replay whose per-account clock
    // offsets (σ = 2 400 s) push pairwise DTW distances past φ.
    let attacker = AttackerSpec::adaptive_jitter(2400.0)
        .with_strategy(FabricationStrategy::camouflaged_default())
        .with_evasion(EvasionTactic::JitteredReplay {
            time_jitter_s: 2400.0,
            order_flips: 1,
        });
    Scenario::generate(
        &ScenarioConfig {
            attackers: vec![attacker],
            ..ScenarioConfig::paper_default()
        }
        .with_seed(1902),
    )
}

/// Runs the full pipeline: ingest the campaign, then keep running
/// epochs (the audit samples new targets each epoch) until `MAX_EPOCHS`.
/// Returns the final snapshot and the engine for report inspection.
fn run_pipeline(s: &Scenario) -> (std::sync::Arc<EpochSnapshot>, EpochEngine<AgTr>) {
    let mut engine = EpochEngine::new(
        SybilResistantTd::new(AgTr::default()),
        s.data.num_tasks(),
        EpochConfig::default(),
    );
    engine.set_audit(AuditPolicy::default().with_seed(7));
    engine.set_audit_reference(s.ground_truth.iter().map(|&t| Some(t)).collect());
    for r in s.data.reports() {
        engine
            .ingest(r.account, r.task, r.value, r.timestamp)
            .expect("campaign reports are valid");
    }
    let mut snap = engine.run_epoch_incremental();
    for _ in 1..MAX_EPOCHS {
        snap = engine.run_epoch_incremental();
    }
    (snap, engine)
}

#[test]
fn threshold_evading_ring_is_convicted_not_grouped() {
    let s = ring_scenario();
    let sybils: Vec<usize> = (0..s.num_accounts()).filter(|&a| s.is_sybil[a]).collect();
    assert_eq!(sybils.len(), 5);
    let (snap, engine) = run_pipeline(&s);

    // The evasion worked: trajectory grouping flags no cluster at the
    // operator's threshold, so the ring is invisible to grouping alone.
    let report = engine.audit_report(3);
    assert!(
        report.suspects().is_empty(),
        "jittered ring should evade AG-TR: {:?}",
        report.suspects()
    );

    // The audit backstop caught it: every ring account convicted, and
    // within the epoch budget.
    let auditor = engine.auditor().expect("audit stage enabled");
    for &a in &sybils {
        let epoch = auditor
            .convicted_epoch(a)
            .unwrap_or_else(|| panic!("ring account {a} not convicted"));
        assert!(epoch <= MAX_EPOCHS, "account {a} convicted late: {epoch}");
    }
    assert_eq!(snap.convicted, sybils, "snapshot publishes the convictions");

    // Zero honest false positives, in convictions and in the joined
    // operator report alike.
    for a in 0..s.num_accounts() {
        if !s.is_sybil[a] {
            assert!(!auditor.is_convicted(a), "honest account {a} convicted");
            assert!(!report.is_suspect(a), "honest account {a} flagged");
        }
    }

    // And the report's suspect set is exactly the convicted ring.
    assert_eq!(report.convicted(), &sybils[..]);
    let flagged: Vec<usize> = (0..s.num_accounts())
        .filter(|&a| report.is_suspect(a))
        .collect();
    assert_eq!(flagged, sybils);
}

#[test]
fn pipeline_is_bit_identical_across_thread_counts() {
    set_max_threads(1);
    let s1 = ring_scenario();
    let (snap1, engine1) = run_pipeline(&s1);
    set_max_threads(4);
    let s4 = ring_scenario();
    let (snap4, engine4) = run_pipeline(&s4);
    set_max_threads(0);

    assert_eq!(s1.data, s4.data, "campaign generation");
    assert_eq!(snap1.truths, snap4.truths, "published truths");
    assert_eq!(snap1.labels, snap4.labels, "group labels");
    assert_eq!(snap1.group_weights, snap4.group_weights, "group weights");
    assert_eq!(snap1.audited, snap4.audited, "audit targets");
    assert_eq!(snap1.convicted, snap4.convicted, "convictions");
    let a1 = engine1.auditor().unwrap();
    let a4 = engine4.auditor().unwrap();
    for a in 0..s1.num_accounts() {
        assert_eq!(a1.convicted_epoch(a), a4.convicted_epoch(a), "account {a}");
        assert_eq!(a1.failures(a), a4.failures(a), "account {a} failures");
    }
}
