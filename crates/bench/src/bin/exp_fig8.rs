//! Experiment `fig8` — reproduces Fig. 8: fingerprint centers of all 11
//! Table-IV smartphones in the first two principal components' space.
//!
//! The paper's observation: centers of same-model units sit very close
//! (hard to differentiate), while models separate.
//!
//! Run with: `cargo run -p srtd-bench --bin exp_fig8`

use srtd_bench::table::Table;
use srtd_cluster::{squared_distance, Pca};
use srtd_fingerprint::{catalog, fingerprint_features, CaptureConfig};
use srtd_runtime::rng::SeedableRng;
use srtd_runtime::rng::StdRng;
use srtd_signal::features::standardize;

const CAPTURES_PER_UNIT: usize = 5;

fn main() {
    println!("Fig. 8 — fingerprint centers of the 11 Table-IV smartphones\n");
    let mut rng = StdRng::seed_from_u64(0xF168);
    let cfg = CaptureConfig::paper_default();

    // Manufacture the full Table IV fleet and capture each unit.
    let mut unit_names = Vec::new();
    let mut model_of_unit = Vec::new();
    let mut features = Vec::new();
    let mut unit_of_capture = Vec::new();
    for (model_idx, entry) in catalog::standard_catalog().iter().enumerate() {
        for unit in 0..entry.quantity {
            let device = entry.model.manufacture(&mut rng);
            let unit_idx = unit_names.len();
            unit_names.push(format!("{} #{}", entry.model.name, unit + 1));
            model_of_unit.push(model_idx);
            for _ in 0..CAPTURES_PER_UNIT {
                features.push(fingerprint_features(&device.capture(&cfg, &mut rng)));
                unit_of_capture.push(unit_idx);
            }
        }
    }
    let units = unit_names.len();
    assert_eq!(units, 11);

    let (standardized, _) = standardize(&features);
    let pca = Pca::fit(&standardized, 2);
    let projected = pca.project_all(&standardized);

    // Per-unit centers in PC space.
    let mut centers = vec![[0.0f64; 2]; units];
    let mut counts = vec![0usize; units];
    for (p, &u) in projected.iter().zip(&unit_of_capture) {
        centers[u][0] += p[0];
        centers[u][1] += p[1];
        counts[u] += 1;
    }
    for (c, &n) in centers.iter_mut().zip(&counts) {
        c[0] /= n as f64;
        c[1] /= n as f64;
    }

    let mut t = Table::new(["unit", "PC1", "PC2"].map(String::from).to_vec());
    for (u, name) in unit_names.iter().enumerate() {
        t.add_row(vec![
            name.clone(),
            format!("{:.2}", centers[u][0]),
            format!("{:.2}", centers[u][1]),
        ]);
    }
    println!("{}", t.render());

    // Same-model vs. cross-model center distances.
    let mut same = Vec::new();
    let mut cross = Vec::new();
    for i in 0..units {
        for j in i + 1..units {
            let d = squared_distance(&centers[i], &centers[j]).sqrt();
            if model_of_unit[i] == model_of_unit[j] {
                same.push(d);
            } else {
                cross.push(d);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let (same_mean, cross_mean) = (mean(&same), mean(&cross));
    println!("mean center distance, same model : {same_mean:.2}");
    println!("mean center distance, cross model: {cross_mean:.2}");
    println!();
    println!("expected shape (paper): same-model centers are very close and");
    println!("hard to differentiate; different models separate clearly.");
    assert!(
        cross_mean > 2.0 * same_mean,
        "same-model units should be much closer: {same_mean} vs {cross_mean}"
    );
    println!("\n[shape check passed]");
}
