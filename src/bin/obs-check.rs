//! `obs-check` — validates an `SRTD_OBS_JSON` export.
//!
//! Reads the file named by its single argument, parses it with the
//! runtime's strict JSON parser and asserts the shape a
//! [`sybil_td::runtime::obs::Report`] export promises: a top-level object
//! with `counters`, `gauges`, `histograms`, `spans`, `events` and
//! `history` keys — `history` being an array of completed telemetry
//! windows, each an object carrying at least `window`, `label` and
//! `trace`. Exits non-zero (with a message on stderr) on any violation,
//! so `scripts/verify.sh` can use it as an offline smoke check.

use std::process::ExitCode;
use sybil_td::runtime::json::{parse, Json};

fn main() -> ExitCode {
    match run() {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<String, String> {
    let mut args = std::env::args().skip(1);
    let path = args.next().ok_or("usage: obs-check <report.json>")?;
    if args.next().is_some() {
        return Err("usage: obs-check <report.json>".into());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
    let tree = parse(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))?;
    let Json::Obj(fields) = tree else {
        return Err(format!("{path}: top level is not an object"));
    };
    for key in [
        "counters",
        "gauges",
        "histograms",
        "spans",
        "events",
        "history",
    ] {
        if !fields.iter().any(|(k, _)| k == key) {
            return Err(format!("{path}: missing `{key}` section"));
        }
    }
    let history = fields
        .iter()
        .find(|(k, _)| k == "history")
        .map(|(_, v)| v)
        .expect("presence checked above");
    let Json::Arr(windows) = history else {
        return Err(format!("{path}: `history` is not an array"));
    };
    for (i, window) in windows.iter().enumerate() {
        let Json::Obj(entries) = window else {
            return Err(format!("{path}: history[{i}] is not an object"));
        };
        for key in ["window", "label", "counters", "trace"] {
            if !entries.iter().any(|(k, _)| k == key) {
                return Err(format!("{path}: history[{i}] is missing `{key}`"));
            }
        }
    }
    let count_of = |key: &str| {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| match v {
                Json::Obj(entries) => entries.len(),
                Json::Arr(entries) => entries.len(),
                _ => 0,
            })
            .unwrap_or(0)
    };
    Ok(format!(
        "ok: {path} ({} counters, {} histograms, {} spans, {} events, {} windows)",
        count_of("counters"),
        count_of("histograms"),
        count_of("spans"),
        count_of("events"),
        windows.len(),
    ))
}
