//! Extension experiment: adaptive adversaries vs the defense matrix.
//!
//! Sweeps attack generators (paper replay, jittered replay vs AG-TR,
//! task mimicry over mixed devices vs AG-TS/AG-FP, fully adaptive
//! camouflage) against defense configurations (no defense, stochastic
//! audit only, combined behavioural grouping AG-TR ∪ AG-TS, grouping +
//! audit), reporting per cell the Sybil detection rate, the honest
//! false-positive rate, and the mean detection epoch.
//!
//! AG-FP stays out of the defense join deliberately: it is a *device*
//! grouper, and the simulated fleet (like the paper's Table IV) carries
//! several same-model devices among honest users, whose fingerprints
//! cluster — at the account level that flags honest users. Its signal
//! enters the sweep from the attack side instead: the mixed-devices
//! generator models the attacker that defeats fingerprint grouping.
//!
//! Every cell drives the epoch engine the way the server does: reports
//! arrive in timestamp order over several ingest epochs, then the
//! campaign idles while the stochastic audit keeps spot-checking. An
//! account counts as detected the first epoch it sits in a flagged
//! cluster (≥ 3 accounts) or is convicted by the audit.
//!
//! Run with: `cargo run -p srtd-bench --release --bin exp_adaptive [seeds] [--fast]`

use srtd_bench::table::Table;
use srtd_core::SybilResistantTd;
use srtd_core::{AgTr, AgTs, CombineMode, CombinedGrouping, SingletonGrouping};
use srtd_platform::{AuditPolicy, EpochConfig, EpochEngine};
use srtd_sensing::{
    AttackType, AttackerSpec, EvasionTactic, FabricationStrategy, Scenario, ScenarioConfig,
};

/// Ingest epochs the campaign is spread over (by timestamp), after which
/// the engine idles under audit until `total_epochs`.
const INGEST_EPOCHS: usize = 4;

struct Attack {
    name: &'static str,
    attackers: Vec<AttackerSpec>,
}

fn attacks() -> Vec<Attack> {
    vec![
        Attack {
            name: "honest only",
            attackers: Vec::new(),
        },
        Attack {
            name: "paper replay",
            attackers: vec![
                AttackerSpec::paper_attack_i(),
                AttackerSpec::paper_attack_ii(),
            ],
        },
        Attack {
            name: "jittered replay",
            attackers: vec![AttackerSpec::adaptive_jitter(2400.0)],
        },
        Attack {
            name: "mimicry + mixed devices",
            attackers: vec![AttackerSpec::adaptive_mimicry(3)],
        },
        Attack {
            name: "fully adaptive",
            attackers: vec![AttackerSpec::adaptive_full(3)],
        },
        Attack {
            // The `adaptive_audit` integration test's ring: camouflaged
            // values on a jittered replay over mixed-model devices. It
            // evades AG-TR (the integration test pins that), but the
            // shared task set still hands it to AG-TS — evading the full
            // join additionally requires mimicry (the row above).
            name: "camouflaged jitter",
            attackers: vec![AttackerSpec {
                accounts: 5,
                attack_type: AttackType::MixedDevices { devices: 3 },
                strategy: FabricationStrategy::camouflaged_default(),
                evasion: EvasionTactic::JitteredReplay {
                    time_jitter_s: 2400.0,
                    order_flips: 1,
                },
            }],
        },
    ]
}

#[derive(Clone, Copy)]
struct Defense {
    name: &'static str,
    grouping: bool,
    audit: bool,
}

const DEFENSES: [Defense; 4] = [
    Defense {
        name: "none",
        grouping: false,
        audit: false,
    },
    Defense {
        name: "audit",
        grouping: false,
        audit: true,
    },
    Defense {
        name: "group",
        grouping: true,
        audit: false,
    },
    Defense {
        name: "group+audit",
        grouping: true,
        audit: true,
    },
];

fn grouping_for(defense: &Defense) -> CombinedGrouping {
    if defense.grouping {
        CombinedGrouping::new(
            vec![Box::new(AgTr::default()), Box::new(AgTs::default())],
            CombineMode::Join,
        )
    } else {
        CombinedGrouping::new(vec![Box::new(SingletonGrouping)], CombineMode::Join)
    }
}

/// Per-account detection epochs for one (scenario, defense) run: the
/// start of the flagged streak that persists through the final epoch,
/// `None` for accounts not flagged at the end. Mid-ingest flags that
/// later clear (partial trajectories make early grouping noisy) do not
/// count as detections.
fn run_cell(s: &Scenario, defense: &Defense, seed: u64, total_epochs: usize) -> Vec<Option<u64>> {
    let mut engine = EpochEngine::new(
        SybilResistantTd::new(grouping_for(defense)),
        s.data.num_tasks(),
        EpochConfig::default(),
    );
    if defense.audit {
        engine.set_audit(AuditPolicy {
            targets_per_epoch: 5,
            ..AuditPolicy::default().with_seed(seed.wrapping_mul(31).wrapping_add(7))
        });
        engine.set_audit_reference(s.ground_truth.iter().map(|&t| Some(t)).collect());
    }
    // Timestamp-ordered arrival, chunked into ingest epochs.
    let mut order: Vec<usize> = (0..s.data.reports().len()).collect();
    order.sort_by(|&a, &b| {
        let (ra, rb) = (&s.data.reports()[a], &s.data.reports()[b]);
        ra.timestamp.total_cmp(&rb.timestamp)
    });
    let chunk = order.len().div_ceil(INGEST_EPOCHS);
    let mut first_flag: Vec<Option<u64>> = vec![None; s.num_accounts()];
    let mut max_account = 0usize;
    for epoch in 1..=total_epochs as u64 {
        if epoch as usize <= INGEST_EPOCHS {
            let lo = (epoch as usize - 1) * chunk;
            for &i in order.iter().skip(lo).take(chunk) {
                let r = &s.data.reports()[i];
                max_account = max_account.max(r.account);
                engine
                    .ingest(r.account, r.task, r.value, r.timestamp)
                    .expect("campaign reports are valid");
            }
        }
        // AG-FP insists on one fingerprint per folded account.
        engine.set_fingerprints(s.fingerprints[..=max_account].to_vec());
        engine.run_epoch();
        let report = engine.audit_report(3);
        for (a, streak) in first_flag.iter_mut().enumerate() {
            if a <= max_account && report.is_suspect(a) {
                streak.get_or_insert(epoch);
            } else {
                *streak = None;
            }
        }
    }
    first_flag
}

#[derive(Default, Clone, Copy)]
struct Cell {
    detected: usize,
    sybils: usize,
    false_pos: usize,
    honest: usize,
    epoch_sum: u64,
}

impl Cell {
    fn det_rate(&self) -> f64 {
        if self.sybils == 0 {
            f64::NAN
        } else {
            self.detected as f64 / self.sybils as f64
        }
    }

    fn fpr(&self) -> f64 {
        self.false_pos as f64 / self.honest.max(1) as f64
    }

    fn mean_epoch(&self) -> f64 {
        if self.detected == 0 {
            f64::NAN
        } else {
            self.epoch_sum as f64 / self.detected as f64
        }
    }

    fn render(&self) -> String {
        let det = if self.sybils == 0 {
            "  — ".to_string()
        } else {
            format!("{:.2}", self.det_rate())
        };
        let epoch = if self.detected == 0 {
            " — ".to_string()
        } else {
            format!("{:.1}", self.mean_epoch())
        };
        format!("{det}/{:.2}/{epoch}", self.fpr())
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let seeds: u64 = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(if fast { 2 } else { 4 });
    let total_epochs = if fast { 10 } else { 16 };
    println!(
        "Extension — adaptive adversaries vs defense matrix \
         ({seeds} seeds, {total_epochs} epochs, activeness 0.6/0.6)\n"
    );
    println!("cell format: detection rate / honest FPR / mean detection epoch\n");

    let mut t = Table::new(
        std::iter::once("attack".to_string())
            .chain(DEFENSES.iter().map(|d| d.name.to_string()))
            .collect(),
    );
    // cells[row][col] aggregated over seeds.
    let mut cells = vec![[Cell::default(); DEFENSES.len()]; attacks().len()];
    for (row, attack) in attacks().iter().enumerate() {
        for seed in 0..seeds {
            let s = Scenario::generate(
                &ScenarioConfig {
                    attackers: attack.attackers.clone(),
                    ..ScenarioConfig::paper_default()
                }
                .with_seed(seed)
                .with_activeness(0.6, 0.6),
            );
            for (col, defense) in DEFENSES.iter().enumerate() {
                let first_flag = run_cell(&s, defense, seed, total_epochs);
                let cell = &mut cells[row][col];
                for (a, flag) in first_flag.iter().enumerate() {
                    if s.is_sybil[a] {
                        cell.sybils += 1;
                        if let Some(e) = flag {
                            cell.detected += 1;
                            cell.epoch_sum += e;
                        }
                    } else {
                        cell.honest += 1;
                        if flag.is_some() {
                            cell.false_pos += 1;
                        }
                    }
                }
            }
        }
        t.add_row(
            std::iter::once(attack.name.to_string())
                .chain(cells[row].iter().map(Cell::render))
                .collect(),
        );
    }
    println!("{}", t.render());
    println!("expected shape:");
    println!("  * honest only: zero false positives in every defense cell;");
    println!("  * paper replay: combined grouping detects the rings outright");
    println!("    and faster than audit alone (AG-TS occasionally drags one");
    println!("    honest account into a ring — the paper's Table III false");
    println!("    positive — so the group columns may show a small FPR);");
    println!("  * jittered replay / camouflaged jitter: AG-TR is blinded by");
    println!("    the per-account clocks, but the accounts still share one");
    println!("    task set, so AG-TS keeps grouping detection high;");
    println!("  * mimicry / fully adaptive: task sets mimic the honest");
    println!("    marginal and trajectories diverge — every behavioural");
    println!("    signal drops below threshold, grouping detection collapses,");
    println!("    and the stochastic audit becomes the backstop: group+audit");
    println!("    dominates group alone.");

    // ---- shape checks -------------------------------------------------
    let names: Vec<&str> = attacks().iter().map(|a| a.name).collect();
    let row = |n: &str| names.iter().position(|&x| x == n).unwrap();

    // Honest-only campaigns: nobody is ever flagged, by any defense.
    for (col, d) in DEFENSES.iter().enumerate() {
        let c = &cells[row("honest only")][col];
        assert_eq!(
            c.false_pos, 0,
            "honest-only FPR must be zero under `{}`",
            d.name
        );
    }
    // No defense, no detection.
    for row in &cells {
        assert_eq!(row[0].detected, 0, "`none` must detect nothing");
    }
    // The paper's replay rings are fully caught by combined grouping,
    // and the jitter evasions still lose to the task-set signal.
    for n in ["paper replay", "jittered replay", "camouflaged jitter"] {
        let c = &cells[row(n)][2];
        assert!(
            c.det_rate() >= 0.9,
            "grouping should crush `{n}`: {}",
            c.det_rate()
        );
    }
    // The audit backstop: on every attacked row, group+audit detects at
    // least what grouping alone does, and audit alone detects something.
    for r in 1..names.len() {
        assert!(
            cells[r][3].det_rate() >= cells[r][2].det_rate() - 1e-9,
            "{}: group+audit below group alone",
            names[r]
        );
        assert!(
            cells[r][1].det_rate() > 0.0,
            "{}: audit alone detected nothing",
            names[r]
        );
    }
    // The adaptive rows are where the audit earns its keep: grouping
    // detection decays below the paper row and group+audit wins.
    for n in ["mimicry + mixed devices", "fully adaptive"] {
        let group = &cells[row(n)][2];
        let both = &cells[row(n)][3];
        assert!(
            group.det_rate() < 0.7,
            "{n}: evasion should drop grouping detection, got {}",
            group.det_rate()
        );
        assert!(
            both.det_rate() > group.det_rate() + 0.15,
            "{n}: audit should detect what grouping misses ({} vs {})",
            both.det_rate(),
            group.det_rate()
        );
    }
    println!("\n[shape checks passed]");
}
