//! Hand-rolled JSON encoding for simulation artifacts.
//!
//! The workspace previously derived `serde::Serialize` on its scenario
//! and fingerprint types without ever linking a serializer; this module
//! replaces that with an explicit, dependency-free encoder. Types opt in
//! by implementing [`ToJson`], building a [`Json`] tree, and rendering it
//! with [`Json::render`].
//!
//! Encoding rules:
//!
//! * numbers render through Rust's shortest-roundtrip `Display` for
//!   `f64`, so re-parsing recovers the exact bits,
//! * non-finite floats (`NaN`, `±∞`) render as `null` — JSON has no
//!   spelling for them,
//! * object keys keep insertion order (deterministic output for
//!   deterministic inputs),
//! * strings escape `"`, `\` and control characters.
//!
//! # Examples
//!
//! ```
//! use srtd_runtime::json::{Json, ToJson};
//!
//! let value = Json::obj([
//!     ("name", Json::str("poi-3")),
//!     ("rssi", (-71.25f64).to_json()),
//!     ("visits", Json::arr(vec![1u64.to_json(), 2u64.to_json()])),
//! ]);
//! assert_eq!(
//!     value.render(),
//!     r#"{"name":"poi-3","rssi":-71.25,"visits":[1,2]}"#
//! );
//! ```

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An array from any iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// An object from `(key, value)` pairs, keys kept in order.
    pub fn obj<'a>(fields: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the tree as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // `Display` for f64 is shortest-roundtrip and always
                    // a valid JSON number (no exponent-only forms).
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Where and why [`parse`] rejected its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses JSON text into a [`Json`] tree (the inverse of
/// [`Json::render`]).
///
/// A strict recursive-descent parser over the JSON grammar: objects keep
/// key order, numbers go through `f64` (so `render → parse` recovers the
/// exact bits [`Json::render`] wrote), `\uXXXX` escapes including
/// surrogate pairs are decoded, and trailing garbage is an error. The
/// observability exports (`SRTD_OBS_JSON`) are validated by feeding them
/// back through this function.
///
/// # Errors
///
/// Returns a [`ParseError`] with the byte offset of the first offending
/// character for malformed input.
///
/// # Examples
///
/// ```
/// use srtd_runtime::json::{parse, Json};
///
/// let tree = parse(r#"{"k": [1, true, null]}"#).unwrap();
/// let Json::Obj(fields) = &tree else { unreachable!() };
/// assert_eq!(fields[0].0, "k");
/// assert_eq!(tree.render(), r#"{"k":[1,true,null]}"#);
/// ```
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_whitespace();
    let value = p.value(0)?;
    p.skip_whitespace();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the top-level value"));
    }
    Ok(value)
}

/// Nesting ceiling: malformed deeply-nested input must not overflow the
/// parser's stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        token
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("invalid number `{token}`")))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&byte) = rest.first() else {
                return Err(self.error("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                0x00..=0x1f => return Err(self.error("raw control character in string")),
                _ => {
                    // Copy one UTF-8 scalar (the input is a &str, so the
                    // sequence is valid by construction).
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn escape(&mut self) -> Result<char, ParseError> {
        let Some(byte) = self.peek() else {
            return Err(self.error("unterminated escape"));
        };
        self.pos += 1;
        Ok(match byte {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xd800..0xdc00).contains(&hi) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xdc00..0xe000).contains(&lo) {
                            return Err(self.error("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                        char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))?
                    } else {
                        return Err(self.error("lone high surrogate"));
                    }
                } else {
                    char::from_u32(hi).ok_or_else(|| self.error("invalid \\u escape"))?
                }
            }
            other => return Err(self.error(format!("unknown escape `\\{}`", other as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        let Some(slice) = self.bytes.get(self.pos..end) else {
            return Err(self.error("truncated \\u escape"));
        };
        let s = std::str::from_utf8(slice).map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }
}

/// Conversion into a [`Json`] tree; the workspace's `Serialize`.
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::str(self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::str(self.as_str())
    }
}

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                // f64 holds integers up to 2^53 exactly — comfortably
                // beyond any account, task or sample count here.
                Json::Num(*self as f64)
            }
        }
    )*};
}

impl_to_json_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::arr(self.iter().map(ToJson::to_json))
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::arr(self.iter().map(ToJson::to_json))
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::arr(self.iter().map(ToJson::to_json))
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(true.to_json().render(), "true");
        assert_eq!(3usize.to_json().render(), "3");
        assert_eq!((-2.5f64).to_json().render(), "-2.5");
        assert_eq!(1.0f64.to_json().render(), "1");
        assert_eq!(f64::NAN.to_json().render(), "null");
        assert_eq!(f64::INFINITY.to_json().render(), "null");
    }

    #[test]
    fn float_display_roundtrips() {
        let x = 0.1f64 + 0.2;
        let rendered = x.to_json().render();
        assert_eq!(rendered.parse::<f64>().unwrap(), x);
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn arrays_objects_and_options_compose() {
        let v = Json::obj([
            ("xs", vec![1u32, 2, 3].to_json()),
            ("missing", Option::<f64>::None.to_json()),
            ("triple", [0.5f64, 1.5, 2.5].to_json()),
        ]);
        assert_eq!(
            v.render(),
            r#"{"xs":[1,2,3],"missing":null,"triple":[0.5,1.5,2.5]}"#
        );
    }

    #[test]
    fn object_key_order_is_insertion_order() {
        let a = Json::obj([("z", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        assert_eq!(a.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse(" -2.5e3 ").unwrap(), Json::Num(-2500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::str("hi"));
    }

    #[test]
    fn parse_containers_preserve_order() {
        let tree = parse(r#"{ "z": [1, 2], "a": {"nested": null} }"#).unwrap();
        let Json::Obj(fields) = &tree else { panic!() };
        assert_eq!(fields[0].0, "z");
        assert_eq!(fields[1].0, "a");
        assert_eq!(tree.render(), r#"{"z":[1,2],"a":{"nested":null}}"#);
    }

    #[test]
    fn parse_string_escapes_round_trip() {
        let original = Json::str("a\"b\\c\nd\u{1}é — \u{10348}");
        let parsed = parse(&original.render()).unwrap();
        assert_eq!(parsed, original);
        // \uXXXX forms including a surrogate pair.
        assert_eq!(parse(r#""é𐍈\/""#).unwrap(), Json::str("é\u{10348}/"));
    }

    #[test]
    fn render_parse_round_trips_arbitrary_trees() {
        let tree = Json::obj([
            ("floats", vec![0.1f64 + 0.2, -0.0, 1e-300].to_json()),
            (
                "mixed",
                Json::arr([Json::Null, Json::Bool(false), Json::str("")]),
            ),
            ("empty_obj", Json::obj([])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        let rendered = tree.render();
        let reparsed = parse(&rendered).unwrap();
        assert_eq!(reparsed.render(), rendered);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            r#"{"k" 1}"#,
            r#"{"k":}"#,
            "tru",
            "1.2.3",
            "\"unterminated",
            "\"bad \\x escape\"",
            "[] []",
            "\"\u{1}\"",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = parse("[1, oops]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn parse_depth_is_bounded() {
        let deep = "[".repeat(4_000) + &"]".repeat(4_000);
        assert!(parse(&deep).is_err());
    }
}
