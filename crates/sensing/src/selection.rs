//! Budgeted account selection by marginal task coverage.
//!
//! §IV-C's Remark: AG-TS/AG-TR false positives (two genuinely independent
//! users with near-identical behaviour) "can be alleviated when the system
//! uses existing incentive mechanisms to incentivize and select users …
//! one of them is less likely selected by the incentive mechanism due to
//! its marginal contribution if the other is selected."
//!
//! This module models the selection side of such mechanisms with the
//! classic greedy maximum-coverage rule (the allocation inside the
//! budget-feasible incentive mechanisms the paper cites): each task needs
//! at most `coverage_per_task` reports, and accounts are admitted in order
//! of marginal coverage until no account adds anything. Near-duplicate
//! accounts have near-zero marginal contribution once their twin is in —
//! exactly the effect the Remark appeals to. `exp_selection` measures it.

use crate::Scenario;
use srtd_truth::SensingData;

/// Greedy maximum-coverage account selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverageSelection {
    /// How many reports the platform wants per task.
    pub coverage_per_task: usize,
}

impl CoverageSelection {
    /// Creates a selection rule wanting `coverage_per_task` reports per
    /// task.
    ///
    /// # Panics
    ///
    /// Panics if `coverage_per_task == 0`.
    pub fn new(coverage_per_task: usize) -> Self {
        assert!(coverage_per_task > 0, "coverage quota must be positive");
        Self { coverage_per_task }
    }

    /// Selects accounts greedily by marginal coverage.
    ///
    /// Returns the selected account indices in admission order. Accounts
    /// whose every task already has a full quota contribute nothing and
    /// are never admitted.
    pub fn select(&self, data: &SensingData) -> Vec<usize> {
        let n = data.num_accounts();
        let m = data.num_tasks();
        let task_sets: Vec<Vec<usize>> = (0..n).map(|a| data.tasks_of(a)).collect();
        let mut remaining: Vec<usize> = (0..n).filter(|&a| !task_sets[a].is_empty()).collect();
        let mut coverage = vec![0usize; m];
        let mut selected = Vec::new();
        loop {
            let marginal = |a: usize| {
                task_sets[a]
                    .iter()
                    .filter(|&&t| coverage[t] < self.coverage_per_task)
                    .count()
            };
            // Highest marginal gain, ties to the lowest account id so the
            // rule is deterministic.
            let Some((idx, &best)) = remaining
                .iter()
                .enumerate()
                .max_by_key(|&(_, &a)| (marginal(a), std::cmp::Reverse(a)))
            else {
                break;
            };
            if marginal(best) == 0 {
                break;
            }
            for &t in &task_sets[best] {
                coverage[t] += 1;
            }
            selected.push(best);
            remaining.swap_remove(idx);
        }
        selected
    }

    /// Applies the selection to a scenario: reports from unselected
    /// accounts are dropped, account indices are preserved (unselected
    /// accounts simply have no reports, so grouping treats them as
    /// inactive singletons).
    pub fn filter_scenario(&self, scenario: &Scenario) -> (SensingData, Vec<usize>) {
        let selected = self.select(&scenario.data);
        let keep: std::collections::HashSet<usize> = selected.iter().copied().collect();
        let mut filtered = SensingData::new(scenario.data.num_tasks());
        for r in scenario.data.reports() {
            if keep.contains(&r.account) {
                filtered.add_report(r.account, r.task, r.value, r.timestamp);
            }
        }
        // Keep account-indexed structures aligned even when the
        // highest-indexed accounts lost all their reports.
        filtered.reserve_accounts(scenario.num_accounts());
        (filtered, selected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_from(sets: &[&[usize]], m: usize) -> SensingData {
        let mut d = SensingData::new(m);
        for (a, tasks) in sets.iter().enumerate() {
            for (i, &t) in tasks.iter().enumerate() {
                d.add_report(a, t, -70.0, (a * 100 + i * 10) as f64);
            }
        }
        d
    }

    #[test]
    fn duplicate_account_is_not_selected_twice() {
        // Accounts 0 and 1 propose identical sets; quota 1 per task.
        let d = data_from(&[&[0, 1], &[0, 1], &[2]], 3);
        let sel = CoverageSelection::new(1).select(&d);
        assert!(sel.contains(&2));
        let dup_count = sel.iter().filter(|&&a| a == 0 || a == 1).count();
        assert_eq!(dup_count, 1, "only one of the twins should be selected");
    }

    #[test]
    fn selection_meets_quota_when_possible() {
        let d = data_from(&[&[0], &[0], &[0], &[1]], 2);
        let sel = CoverageSelection::new(2).select(&d);
        // Task 0 has three candidates; two suffice. Task 1 has one.
        let covering_0 = sel.iter().filter(|&&a| a < 3).count();
        assert_eq!(covering_0, 2);
        assert!(sel.contains(&3));
    }

    #[test]
    fn greedy_prefers_high_coverage_accounts() {
        let d = data_from(&[&[0, 1, 2, 3], &[0], &[1]], 4);
        let sel = CoverageSelection::new(1).select(&d);
        assert_eq!(sel[0], 0, "the broad account goes first");
        assert_eq!(sel.len(), 1, "narrow accounts add nothing at quota 1");
    }

    #[test]
    fn accounts_without_reports_are_ignored() {
        let mut d = SensingData::new(1);
        d.add_report(3, 0, 1.0, 0.0); // accounts 0..3 exist but are empty
        let sel = CoverageSelection::new(1).select(&d);
        assert_eq!(sel, vec![3]);
    }

    #[test]
    fn filter_preserves_account_indices() {
        use crate::ScenarioConfig;
        let s = crate::Scenario::generate(&ScenarioConfig::paper_default().with_seed(3));
        let (filtered, selected) = CoverageSelection::new(3).filter_scenario(&s);
        assert_eq!(filtered.num_tasks(), s.data.num_tasks());
        assert!(filtered.num_reports() < s.data.num_reports());
        for r in filtered.reports() {
            assert!(selected.contains(&r.account));
        }
    }

    #[test]
    #[should_panic(expected = "quota must be positive")]
    fn zero_quota_panics() {
        CoverageSelection::new(0);
    }
}
