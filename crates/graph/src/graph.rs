//! Adjacency-list representation of an undirected weighted graph.

use crate::components::ComponentLabeling;

/// An edge of an undirected weighted graph, reported with `u <= v`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: usize,
    /// Larger endpoint.
    pub v: usize,
    /// Edge weight (an affinity or dissimilarity score).
    pub weight: f64,
}

/// A neighbor entry in an adjacency list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the adjacent node.
    pub node: usize,
    /// Weight of the connecting edge.
    pub weight: f64,
}

/// An undirected graph with `f64` edge weights over nodes `0..n`.
///
/// Nodes are plain indices; the account-grouping code maps account ids to
/// indices before building the graph. Parallel edges are permitted (the
/// grouping methods never create them) and self-loops are ignored by
/// [`Graph::add_edge`] since they carry no grouping information.
///
/// # Examples
///
/// ```
/// use srtd_graph::Graph;
///
/// let mut g = Graph::new(3);
/// g.add_edge(0, 2, 1.5);
/// assert_eq!(g.degree(0), 1);
/// assert_eq!(g.degree(1), 0);
/// assert!(g.has_edge(2, 0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<Neighbor>>,
    edge_count: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Builds a graph over `n` nodes from an edge iterator.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let mut g = Self::new(n);
        for (u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        g
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds the undirected edge `{u, v}` with the given weight.
    ///
    /// Self-loops (`u == v`) are silently ignored: a node is always in its
    /// own group, so a self-edge never changes a grouping result.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of bounds.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) {
        let n = self.adj.len();
        assert!(
            u < n && v < n,
            "edge ({u}, {v}) out of bounds for {n} nodes"
        );
        if u == v {
            return;
        }
        self.adj[u].push(Neighbor { node: v, weight });
        self.adj[v].push(Neighbor { node: u, weight });
        self.edge_count += 1;
    }

    /// Returns `true` if at least one edge connects `u` and `v`.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj
            .get(u)
            .is_some_and(|ns| ns.iter().any(|nb| nb.node == v))
    }

    /// Degree (number of incident edge endpoints) of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// The neighbors of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds.
    pub fn neighbors(&self, u: usize) -> &[Neighbor] {
        &self.adj[u]
    }

    /// Iterates over every undirected edge once, with `u <= v`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, ns)| {
            ns.iter().filter_map(move |nb| {
                (u <= nb.node).then_some(Edge {
                    u,
                    v: nb.node,
                    weight: nb.weight,
                })
            })
        })
    }

    /// Labels each node with its connected component using an iterative DFS.
    ///
    /// This is the component-discovery step of the AG-TS and AG-TR grouping
    /// methods (step 3 in the paper): every component becomes one candidate
    /// Sybil group, and isolated nodes become singleton groups.
    pub fn connected_components(&self) -> ComponentLabeling {
        ComponentLabeling::from_graph(self)
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> f64 {
        self.edges().map(|e| e.weight).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_graph_has_no_edges() {
        let g = Graph::new(4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_edge_is_undirected() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 2.0);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn self_loop_is_ignored() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1, 9.0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]);
        let es: Vec<Edge> = g.edges().collect();
        assert_eq!(es.len(), 3);
        assert!(es.iter().all(|e| e.u <= e.v));
        assert!((g.total_weight() - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_edge_out_of_bounds_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 2, 1.0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::new(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.connected_components().len(), 0);
    }

    #[test]
    fn parallel_edges_counted() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 2.0);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(0), 2);
    }
}
