//! Gaussian sampling helpers on top of any [`Rng`].
//!
//! Thin named wrappers around the Box–Muller normal sampling that
//! [`srtd_runtime::rng::Rng`] provides, kept because "bias spread" reads
//! better as `normal(rng, center, spread)` at the call sites.

use srtd_runtime::rng::Rng;

/// Draws one standard-normal variate.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    rng.standard_normal()
}

/// Draws a normal variate with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `std_dev` is negative or non-finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    rng.normal(mean, std_dev)
}

/// Fills a 3-vector with i.i.d. normal variates.
pub fn normal3<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> [f64; 3] {
    [
        normal(rng, mean, std_dev),
        normal(rng, mean, std_dev),
        normal(rng, mean, std_dev),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::SeedableRng;
    use srtd_runtime::rng::StdRng;

    #[test]
    fn sample_moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn normal_respects_parameters() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 0.5)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.02);
    }

    #[test]
    fn zero_std_dev_is_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(normal(&mut rng, 2.5, 0.0), 2.5);
    }

    #[test]
    #[should_panic(expected = "standard deviation")]
    fn negative_std_dev_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        normal(&mut rng, 0.0, -1.0);
    }

    #[test]
    fn normal3_components_differ() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = normal3(&mut rng, 0.0, 1.0);
        assert!(v[0] != v[1] || v[1] != v[2]);
    }
}
