//! Experiment `elbow` — the §IV-C elbow-method behaviour: SSE versus k on
//! fingerprint features, and the chosen device count.
//!
//! Run with: `cargo run -p srtd-bench --bin exp_elbow`

use srtd_bench::table::Table;
use srtd_cluster::{elbow, KMeansConfig};
use srtd_fingerprint::{catalog, fingerprint_features, CaptureConfig};
use srtd_runtime::rng::SeedableRng;
use srtd_runtime::rng::StdRng;
use srtd_signal::features::standardize;

fn main() {
    println!("Elbow method on fingerprint features (§IV-C)\n");
    let cfg = CaptureConfig::paper_default();
    let models = catalog::standard_catalog();

    let mut t = Table::new(
        ["true devices", "captures", "estimated k"]
            .map(String::from)
            .to_vec(),
    );
    let mut all_ok = true;
    for true_devices in 2..=5usize {
        let mut rng = StdRng::seed_from_u64(0xE1B0 + true_devices as u64);
        let mut features = Vec::new();
        for d in 0..true_devices {
            // Spread across models so devices are separable.
            let device = models[(d * 2) % models.len()].model.manufacture(&mut rng);
            for _ in 0..5 {
                features.push(fingerprint_features(&device.capture(&cfg, &mut rng)));
            }
        }
        let (standardized, _) = standardize(&features);
        let result = elbow(&standardized, features.len(), KMeansConfig::new(1));
        let ok = result.k.abs_diff(true_devices) <= 2;
        all_ok &= ok;
        t.add_row(vec![
            true_devices.to_string(),
            features.len().to_string(),
            format!("{}{}", result.k, if ok { "" } else { "  (!)" }),
        ]);
        if true_devices == 3 {
            println!("SSE curve at 3 devices:");
            let mut c = Table::new(["k", "SSE"].map(String::from).to_vec());
            for (i, sse) in result.sse_curve.iter().enumerate() {
                c.add_row(vec![(i + 1).to_string(), format!("{sse:.1}")]);
            }
            println!("{}", c.render());
        }
    }
    println!("{}", t.render());
    println!("expected shape: SSE drops steeply until k reaches the true");
    println!("device count, then flattens. Session noise keeps the tail");
    println!("sloping, so the knee over-estimates by up to ~2 — a conservative");
    println!("error for AG-FP: splitting one device across groups never merges");
    println!("distinct users, it only weakens Sybil collapsing slightly.");
    assert!(all_ok, "elbow estimate was off by more than 2 somewhere");
    println!("\n[shape check passed]");
}
