//! Convergence control shared by the iterative algorithms.

/// Iteration cap plus truth-change tolerance.
///
/// The paper notes the criterion is application-defined (e.g. a fixed
/// iteration count in CRH); this type supports both styles at once: stop
/// when the largest per-task truth change drops below `tolerance`, or after
/// `max_iterations`, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceCriterion {
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Largest allowed per-task truth change at convergence.
    pub tolerance: f64,
}

impl Default for ConvergenceCriterion {
    fn default() -> Self {
        Self {
            max_iterations: 1000,
            tolerance: 1e-6,
        }
    }
}

impl ConvergenceCriterion {
    /// Creates a criterion.
    ///
    /// # Panics
    ///
    /// Panics if `max_iterations == 0` or `tolerance` is negative/NaN.
    pub fn new(max_iterations: usize, tolerance: f64) -> Self {
        assert!(max_iterations > 0, "need at least one iteration");
        assert!(
            tolerance >= 0.0,
            "tolerance must be non-negative, got {tolerance}"
        );
        Self {
            max_iterations,
            tolerance,
        }
    }

    /// Returns `true` when the truth estimates have stabilized.
    pub fn is_converged(&self, previous: &[Option<f64>], current: &[Option<f64>]) -> bool {
        max_abs_delta(previous, current) <= self.tolerance
    }
}

/// Largest absolute per-task change between two truth vectors; slots that
/// are `None` in either vector are skipped.
pub fn max_abs_delta(previous: &[Option<f64>], current: &[Option<f64>]) -> f64 {
    previous
        .iter()
        .zip(current)
        .filter_map(|(p, c)| Some((p.as_ref()? - c.as_ref()?).abs()))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_ignores_missing_tasks() {
        let a = vec![Some(1.0), None, Some(3.0)];
        let b = vec![Some(1.5), Some(9.0), Some(3.0)];
        assert_eq!(max_abs_delta(&a, &b), 0.5);
    }

    #[test]
    fn converged_when_stable() {
        let crit = ConvergenceCriterion::new(10, 1e-3);
        let a = vec![Some(1.0)];
        let b = vec![Some(1.0005)];
        assert!(crit.is_converged(&a, &b));
        let c = vec![Some(1.1)];
        assert!(!crit.is_converged(&a, &c));
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        ConvergenceCriterion::new(0, 1e-6);
    }
}
