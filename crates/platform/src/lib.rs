//! The cloud-platform side of a mobile crowdsensing system.
//!
//! §III-A: "a typical MCS system consists of a cloud-based platform and a
//! crowd of participants. The platform first publicizes a set of sensing
//! tasks … each user submits [its accomplished task set] to the platform.
//! Meanwhile, the platform collects the sensor data from the device for
//! device fingerprinting." This crate is that platform, as an embeddable
//! service object:
//!
//! * [`Platform::publish_tasks`] — open a campaign,
//! * [`Platform::enroll`] — register an account, capturing its device
//!   fingerprint at sign-in (the paper's 6-second hold),
//! * [`Platform::submit`] — accept one timestamped report per (account,
//!   task), enforcing the adversary-model assumptions the paper makes:
//!   timestamps cannot be fabricated (§III-C cites a detection scheme
//!   [31]; here, submissions outside the plausible clock window or
//!   behind the account's own timeline are rejected),
//! * [`Platform::audit`] — run a pluggable account-grouping method and
//!   flag suspected Sybil groups,
//! * [`Platform::aggregate`] / [`Platform::aggregate_resistant`] — plain
//!   or Sybil-resistant truth discovery over everything accepted so far.
//!
//! For the streaming regime — reports arriving continuously while truths
//! stay servable — [`EpochEngine`] wraps the same pipeline in an
//! incremental epoch loop: buffered ingest, fold at epoch boundaries,
//! warm-started re-discovery, immutable published snapshots. Against
//! adaptive attackers who evade every behavioural grouping signal, the
//! engine can additionally run a [`StochasticAuditor`]: deterministic
//! seed-derived spot checks against trusted reference values with a
//! k-failure conviction machine (see [`stochastic`]).
//!
//! # Examples
//!
//! ```
//! use srtd_platform::{Platform, PlatformConfig};
//! use srtd_truth::Crh;
//!
//! let mut platform = Platform::new(PlatformConfig::default());
//! platform.publish_tasks(2);
//! let alice = platform.enroll(vec![0.0; 80], 0.0).unwrap();
//! platform.advance_clock(100.0);
//! platform.submit(alice, 0, -77.0, 60.0)?;
//! let result = platform.aggregate(&Crh::default());
//! assert_eq!(result.truths[0], Some(-77.0));
//! # Ok::<(), srtd_platform::SubmitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod epoch;
mod error;
mod service;
pub mod stochastic;

pub use audit::{AuditReport, SuspectGroup};
pub use epoch::{EpochConfig, EpochEngine, EpochReader, EpochSnapshot, IngestError};
pub use error::{EnrollError, SubmitError};
pub use service::{AccountId, Platform, PlatformConfig};
pub use stochastic::{AuditPolicy, EpochAudit, StochasticAuditor};
