//! Facade crate re-exporting the whole Sybil-resistant truth discovery stack.
//!
//! See the workspace README for an overview. The primary contribution lives
//! in [`srtd_core`]; everything else is a substrate it builds on.

#![forbid(unsafe_code)]

pub use srtd_cluster as cluster;
pub use srtd_core as core;
pub use srtd_fingerprint as fingerprint;
pub use srtd_graph as graph;
pub use srtd_metrics as metrics;
pub use srtd_platform as platform;
pub use srtd_runtime as runtime;
pub use srtd_sensing as sensing;
pub use srtd_signal as signal;
pub use srtd_timeseries as timeseries;
pub use srtd_truth as truth;
