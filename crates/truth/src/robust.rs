//! Robust truth discovery: CRH weighting with weighted-median truth
//! updates.
//!
//! CRH's weighted-*mean* truth update moves continuously with every
//! claim, so a coordinated block of accounts can drag it arbitrarily far
//! once its combined weight grows. Replacing the update with the
//! weighted *median* gives the estimator a 50%-of-total-weight breakdown
//! point: the estimate cannot leave the claims of the majority weight
//! mass. This is a natural robust baseline to put next to CRH when
//! studying Sybil attacks — it resists minority-weight attacks for free,
//! yet still falls once Sybil accounts hold the weight majority, which
//! is exactly the regime the paper's framework addresses by grouping.

use crate::convergence::ConvergenceCriterion;
use crate::data::SensingData;
use crate::traits::{TruthDiscovery, TruthDiscoveryResult};

/// CRH-style weights with weighted-median truth updates.
///
/// # Examples
///
/// ```
/// use srtd_truth::{RobustCrh, SensingData, TruthDiscovery};
///
/// let mut data = SensingData::new(1);
/// data.add_report(0, 0, 10.0, 0.0);
/// data.add_report(1, 0, 10.2, 0.0);
/// data.add_report(2, 0, 99.0, 0.0);
/// let truth = RobustCrh::default().discover(&data).truths[0].unwrap();
/// assert!(truth < 11.0); // outlier cannot drag a median
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RobustCrh {
    convergence: ConvergenceCriterion,
}

impl RobustCrh {
    /// Creates an instance with explicit convergence control.
    pub fn new(convergence: ConvergenceCriterion) -> Self {
        Self { convergence }
    }
}

/// Weighted median of `(value, weight)` pairs: the smallest value whose
/// cumulative weight reaches half the total.
///
/// Zero-total-weight inputs fall back to the unweighted median. Returns
/// `None` for empty input.
pub fn weighted_median(pairs: &mut [(f64, f64)]) -> Option<f64> {
    if pairs.is_empty() {
        return None;
    }
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total: f64 = pairs.iter().map(|p| p.1).sum();
    if total <= 0.0 {
        let mid = pairs.len() / 2;
        return Some(if pairs.len() % 2 == 1 {
            pairs[mid].0
        } else {
            0.5 * (pairs[mid - 1].0 + pairs[mid].0)
        });
    }
    let half = total / 2.0;
    let mut acc = 0.0;
    for &(value, weight) in pairs.iter() {
        acc += weight;
        if acc >= half {
            return Some(value);
        }
    }
    pairs.last().map(|p| p.0)
}

impl TruthDiscovery for RobustCrh {
    fn discover(&self, data: &SensingData) -> TruthDiscoveryResult {
        let n = data.num_accounts();
        if data.is_empty() || n == 0 {
            return TruthDiscoveryResult {
                truths: vec![None; data.num_tasks()],
                weights: vec![0.0; n],
                iterations: 0,
                converged: true,
            };
        }
        let (centered, centers) = data.centered();
        let data = &centered;
        let stds = data.task_value_std();
        // Initialize with per-task (unweighted) medians.
        let mut truths: Vec<Option<f64>> = (0..data.num_tasks())
            .map(|t| {
                let mut pairs: Vec<(f64, f64)> =
                    data.task_reports(t).map(|r| (r.value, 1.0)).collect();
                weighted_median(&mut pairs)
            })
            .collect();
        let mut weights = vec![1.0; n];
        let mut iterations = 0;
        let mut converged = false;
        for iter in 0..self.convergence.max_iterations {
            iterations = iter + 1;
            // CRH weight update on absolute normalized residuals (the l1
            // analogue of CRH's squared loss, matching the median target).
            let mut losses = vec![0.0f64; n];
            for r in data.reports() {
                let Some(truth) = truths[r.task] else {
                    continue;
                };
                let sigma = stds[r.task].unwrap_or(1.0).max(1e-9);
                losses[r.account] += ((r.value - truth) / sigma).abs();
            }
            let total: f64 = losses.iter().sum();
            let floor = (total / n as f64).max(1e-12) * 1e-6;
            for (w, &loss) in weights.iter_mut().zip(&losses) {
                *w = (total.max(1e-12) / loss.max(floor)).ln().max(0.0);
            }
            if weights.iter().all(|&w| w == 0.0) {
                weights.fill(1.0);
            }
            // Weighted-median truth update.
            let next: Vec<Option<f64>> = (0..data.num_tasks())
                .map(|t| {
                    let mut pairs: Vec<(f64, f64)> = data
                        .task_reports(t)
                        .map(|r| (r.value, weights[r.account]))
                        .collect();
                    weighted_median(&mut pairs)
                })
                .collect();
            let done = self.convergence.is_converged(&truths, &next);
            truths = next;
            if done {
                converged = true;
                break;
            }
        }
        let truths = truths
            .iter()
            .zip(&centers)
            .map(|(t, c)| match (t, c) {
                (Some(t), Some(c)) => Some(t + c),
                _ => None,
            })
            .collect();
        TruthDiscoveryResult {
            truths,
            weights,
            iterations,
            converged,
        }
    }

    fn name(&self) -> &'static str {
        "RobustCRH"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert};

    #[test]
    fn weighted_median_basics() {
        let mut pairs = vec![(1.0, 1.0), (2.0, 1.0), (100.0, 1.0)];
        assert_eq!(weighted_median(&mut pairs), Some(2.0));
        let mut pairs = vec![(1.0, 1.0), (2.0, 10.0)];
        assert_eq!(weighted_median(&mut pairs), Some(2.0));
        let mut pairs: Vec<(f64, f64)> = vec![];
        assert_eq!(weighted_median(&mut pairs), None);
        // Zero weights fall back to the plain median.
        let mut pairs = vec![(1.0, 0.0), (3.0, 0.0)];
        assert_eq!(weighted_median(&mut pairs), Some(2.0));
    }

    #[test]
    fn resists_minority_weight_attack() {
        // Two reliable accounts + three coordinated liars with low
        // per-account credibility after the first iteration.
        let mut d = SensingData::new(3);
        for t in 0..3 {
            d.add_report(0, t, -80.0 + t as f64, 0.0);
            d.add_report(1, t, -80.2 + t as f64, 0.0);
        }
        // Liars only cover task 0, so their weights stay moderate.
        d.add_report(2, 0, -50.0, 0.0);
        d.add_report(3, 0, -50.0, 0.0);
        let r = RobustCrh::default().discover(&d);
        let t0 = r.truths[0].unwrap();
        assert!(t0 < -70.0, "median dragged to {t0}");
    }

    #[test]
    fn majority_still_wins_motivating_grouping() {
        // 1 honest vs 3 Sybil accounts: median falls — robustness alone
        // does not replace grouping (the paper's point).
        let mut d = SensingData::new(1);
        d.add_report(0, 0, -80.0, 0.0);
        for a in 1..4 {
            d.add_report(a, 0, -50.0, 0.0);
        }
        let r = RobustCrh::default().discover(&d);
        assert!(r.truths[0].unwrap() > -55.0);
    }

    #[test]
    fn empty_and_single() {
        let r = RobustCrh::default().discover(&SensingData::new(2));
        assert_eq!(r.truths, vec![None, None]);
        let mut d = SensingData::new(1);
        d.add_report(0, 0, 7.0, 0.0);
        let r = RobustCrh::default().discover(&d);
        assert_eq!(r.truths[0], Some(7.0));
    }

    /// The weighted median is always one of the input values (or a
    /// midpoint in the zero-weight fallback) and sits inside the hull.
    #[test]
    fn weighted_median_in_hull() {
        prop::check(
            |rng| {
                prop::vec_with(rng, 1..30, |r| {
                    (r.gen_range(-100f64..100.0), r.gen_range(0.0f64..5.0))
                })
            },
            |pairs| {
                let lo = pairs.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
                let hi = pairs.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
                let mut input = pairs.clone();
                let m = weighted_median(&mut input).expect("non-empty");
                prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
                Ok(())
            },
        );
    }

    /// Estimates stay in the per-task hull.
    #[test]
    fn estimates_in_hull() {
        prop::check(
            |rng| {
                prop::vec_with(rng, 1..25, |r| {
                    (
                        r.gen_range(0usize..5),
                        r.gen_range(0usize..3),
                        r.gen_range(-50f64..50.0),
                    )
                })
            },
            |raw| {
                let mut d = SensingData::new(3);
                let mut seen = std::collections::HashSet::new();
                for &(a, t, v) in raw {
                    if seen.insert((a, t)) {
                        d.add_report(a, t, v, 0.0);
                    }
                }
                let r = RobustCrh::default().discover(&d);
                for t in 0..3 {
                    let vals: Vec<f64> = d.task_reports(t).map(|r| r.value).collect();
                    if let Some(est) = r.truths[t] {
                        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                        prop_assert!(est >= lo - 1e-6 && est <= hi + 1e-6);
                    }
                }
                Ok(())
            },
        );
    }
}
