//! Account grouping cost: the three methods on paper-scale and larger
//! campaigns.

use srtd_core::{AccountGrouping, AgFp, AgTr, AgTs};
use srtd_runtime::bench::{black_box, Bench};
use srtd_sensing::{Scenario, ScenarioConfig};

fn scenario(num_legit: usize) -> Scenario {
    let cfg = ScenarioConfig {
        num_legit,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(5);
    Scenario::generate(&cfg)
}

fn main() {
    let mut group = Bench::new("grouping");
    for &n in &[8usize, 24, 64] {
        let s = scenario(n);
        group.run(&format!("ag_fp/{n}"), || {
            AgFp::default().group(black_box(&s.data), &s.fingerprints)
        });
        group.run(&format!("ag_ts/{n}"), || {
            AgTs::default().group(black_box(&s.data), &s.fingerprints)
        });
        group.run(&format!("ag_tr/{n}"), || {
            AgTr::default().group(black_box(&s.data), &s.fingerprints)
        });
    }
}
