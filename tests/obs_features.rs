//! Golden export for the fused feature-extraction counters: one batched
//! Table-II extraction must surface the `signal.features.fused_calls`,
//! `signal.window.cache_*` and `signal.spectral.peak_pairs` counters,
//! their deterministic JSON export must be byte-identical across
//! worker-thread counts, and a never-seen frame length must record a
//! window-cache miss.
//!
//! This file holds a single test on purpose: the obs registry is
//! process-wide, and a second concurrently running test would bleed
//! metrics into the snapshot.

use sybil_td::runtime::obs;
use sybil_td::runtime::parallel::set_max_threads;
use sybil_td::signal::{stream_features_batch, FeatureConfig};

/// Two well-separated tones and no DC offset, so every stream has at
/// least two spectral peaks and the roughness pair counter must fire.
fn two_tone_streams(count: usize, n: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|s| {
            (0..n)
                .map(|i| {
                    let t = i as f64 / n as f64;
                    (2.0 * std::f64::consts::PI * (8.0 + s as f64) * t).sin()
                        + 0.8 * (2.0 * std::f64::consts::PI * 40.0 * t).sin()
                })
                .collect()
        })
        .collect()
}

fn counter(report: &obs::Report, name: &str) -> u64 {
    report
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

#[test]
fn fused_feature_counters_export_deterministically() {
    let streams = two_tone_streams(4, 512);
    let cfg = FeatureConfig::new(100.0);

    // Warm the process-wide window-coefficient cache first: the one miss
    // per (window, length) key lands here instead of inside the first
    // comparative run, so both instrumented runs see an identical
    // hits-only cache and their exports can match byte for byte.
    let _ = stream_features_batch(&streams, &cfg);

    let mut exports = Vec::new();
    let mut reports = Vec::new();
    for threads in [1usize, 4] {
        set_max_threads(threads);
        obs::set_enabled(true);
        obs::reset();
        let _ = stream_features_batch(&streams, &cfg);
        let report = obs::snapshot();
        obs::set_enabled(false);
        exports.push(report.deterministic_json());
        reports.push(report);
    }
    set_max_threads(0);
    assert_eq!(
        exports[0], exports[1],
        "deterministic export must not depend on the worker count"
    );

    // One fused extraction per stream; every windowing hit the warm
    // cache; two peaks per stream means one Plomp–Levelt pair each.
    let report = &reports[0];
    assert_eq!(counter(report, "signal.features.fused_calls"), 4);
    assert_eq!(counter(report, "signal.window.cache_hits"), 4);
    assert_eq!(counter(report, "signal.window.cache_misses"), 0);
    assert!(
        counter(report, "signal.spectral.peak_pairs") > 0,
        "two-tone streams must produce roughness peak pairs"
    );
    for name in [
        "signal.features.fused_calls",
        "signal.window.cache_hits",
        "signal.spectral.peak_pairs",
    ] {
        assert!(
            exports[0].contains(name),
            "deterministic export must name `{name}`"
        );
    }

    // A frame length the cache has never seen must record a miss (and
    // exactly one: the second extraction of the same length hits).
    obs::set_enabled(true);
    obs::reset();
    let fresh = two_tone_streams(2, 300);
    let _ = stream_features_batch(&fresh, &cfg);
    let report = obs::snapshot();
    obs::set_enabled(false);
    assert_eq!(counter(&report, "signal.window.cache_misses"), 1);
    assert_eq!(counter(&report, "signal.window.cache_hits"), 1);
}
