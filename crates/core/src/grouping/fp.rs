//! AG-FP: account grouping by device fingerprint (§IV-C).

use crate::grouping::{AccountGrouping, Grouping};
use srtd_cluster::hierarchical::{agglomerative, Linkage};
use srtd_cluster::{elbow, KMeans, KMeansConfig};
use srtd_signal::features::standardize;
use srtd_truth::SensingData;

/// The clustering backend AG-FP runs on the standardized fingerprints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FpClustering {
    /// §IV-C's pipeline: elbow method to estimate the device count, then
    /// k-means (the default).
    KMeansElbow,
    /// Agglomerative clustering cut at a distance threshold — no cluster
    /// count needed; see `exp_ablation_clustering` for the comparison.
    Hierarchical {
        /// Euclidean merge threshold on standardized features.
        threshold: f64,
        /// Linkage criterion.
        linkage: Linkage,
    },
}

/// Account grouping by device fingerprint.
///
/// Clusters the per-account fingerprint feature vectors (20 Table-II
/// features × 4 sensor streams, produced by `srtd-fingerprint`) with
/// k-means, estimating the number of devices `k` by the elbow method —
/// exactly the pipeline of §IV-C. Accounts whose fingerprints land in the
/// same cluster are assumed to share a device, which defeats Attack-I
/// (one device, many accounts). Features are z-standardized before
/// clustering since their raw scales differ by orders of magnitude.
///
/// # Examples
///
/// ```
/// use srtd_runtime::rng::SeedableRng;
/// use srtd_core::{AccountGrouping, AgFp};
/// use srtd_fingerprint::{catalog, fingerprint_features, CaptureConfig};
/// use srtd_truth::SensingData;
///
/// let mut rng = srtd_runtime::rng::StdRng::seed_from_u64(3);
/// let models = catalog::standard_catalog();
/// let phone_a = models[2].model.manufacture(&mut rng);
/// let phone_b = models[5].model.manufacture(&mut rng);
/// let cfg = CaptureConfig::paper_default();
/// let mut data = SensingData::new(1);
/// let mut prints = Vec::new();
/// for (acct, phone) in [(0, &phone_a), (1, &phone_a), (2, &phone_b)] {
///     data.add_report(acct, 0, -70.0, acct as f64 * 40.0);
///     prints.push(fingerprint_features(&phone.capture(&cfg, &mut rng)));
/// }
/// let grouping = AgFp::default().group(&data, &prints);
/// assert_eq!(grouping.group_of(0), grouping.group_of(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgFp {
    kmeans: KMeansConfig,
    /// Optional override of the device count; `None` runs the elbow method.
    known_k: Option<usize>,
    clustering: FpClustering,
}

impl Default for AgFp {
    fn default() -> Self {
        Self {
            kmeans: KMeansConfig::new(1).with_restarts(12),
            known_k: None,
            clustering: FpClustering::KMeansElbow,
        }
    }
}

impl AgFp {
    /// AG-FP with the elbow method estimating the device count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fixes the cluster count instead of estimating it (ablation: how
    /// much does the elbow estimate cost relative to knowing the truth?).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_known_k(mut self, k: usize) -> Self {
        assert!(k > 0, "device count must be positive");
        self.known_k = Some(k);
        self
    }

    /// Replaces the k-means seed (results are deterministic per seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.kmeans = self.kmeans.with_seed(seed);
        self
    }

    /// Switches the clustering backend (ablation;
    /// [`FpClustering::KMeansElbow`] is the paper's pipeline).
    pub fn with_clustering(mut self, clustering: FpClustering) -> Self {
        self.clustering = clustering;
        self
    }
}

impl AccountGrouping for AgFp {
    fn group(&self, data: &SensingData, fingerprints: &[Vec<f64>]) -> Grouping {
        let n = data.num_accounts();
        assert_eq!(
            fingerprints.len(),
            n,
            "AG-FP needs one fingerprint per account ({} fingerprints, {n} accounts)",
            fingerprints.len()
        );
        if n == 0 {
            return Grouping::from_labels(&[]);
        }
        if n == 1 {
            return Grouping::singletons(1);
        }
        let _span = srtd_runtime::obs::span("ag_fp.group");
        let standardized = {
            let _span = srtd_runtime::obs::span("ag_fp.standardize");
            standardize(fingerprints).0
        };
        if let FpClustering::Hierarchical { threshold, linkage } = self.clustering {
            let result = agglomerative(&standardized, threshold, linkage);
            return Grouping::from_labels(&result.assignments);
        }
        let k = match self.known_k {
            Some(k) => k.min(n),
            None => {
                let _span = srtd_runtime::obs::span("ag_fp.elbow");
                elbow(&standardized, n, self.kmeans).k
            }
        };
        srtd_runtime::obs::event(
            "ag_fp.k",
            [
                ("k", srtd_runtime::json::ToJson::to_json(&k)),
                (
                    "estimated",
                    srtd_runtime::json::ToJson::to_json(&self.known_k.is_none()),
                ),
            ],
        );
        let result = {
            let _span = srtd_runtime::obs::span("ag_fp.kmeans");
            KMeans::new(KMeansConfig { k, ..self.kmeans }).fit(&standardized)
        };
        // AG-FP is centroid-based, not pairwise, so its "pairs" are the
        // point–centroid comparisons of the final fit (the elbow sweep's
        // internal fits are a model-selection cost, not assignment work)
        // and its buckets are the k clusters. Recording them under the
        // same scheme keeps the three signals comparable in one export.
        crate::grouping::blocking::record_pair_counts(
            "ag_fp",
            result.pruning.total(),
            result.pruning.distance_evals,
            k as u64,
        );
        Grouping::from_labels(&result.assignments)
    }

    fn name(&self) -> &'static str {
        "AG-FP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_fingerprint::catalog::standard_catalog;
    use srtd_fingerprint::{fingerprint_features, CaptureConfig, DeviceInstance};
    use srtd_runtime::rng::SeedableRng;
    use srtd_runtime::rng::StdRng;

    fn prints_for(devices: &[&DeviceInstance], per_device: usize, seed: u64) -> Vec<Vec<f64>> {
        let cfg = CaptureConfig::paper_default();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for d in devices {
            for _ in 0..per_device {
                out.push(fingerprint_features(&d.capture(&cfg, &mut rng)));
            }
        }
        out
    }

    fn dummy_data(n: usize) -> SensingData {
        let mut d = SensingData::new(2);
        for a in 0..n {
            d.add_report(a, 0, -70.0, a as f64);
            d.add_report(a, 1, -75.0, a as f64 + 100.0);
        }
        d
    }

    #[test]
    fn fig2_scenario_three_models_groups_by_device() {
        // Fig. 2: 3 smartphones of different models, 5 fingerprints each,
        // k-means with k = 3.
        let mut rng = StdRng::seed_from_u64(11);
        let catalog = standard_catalog();
        let d0 = catalog[2].model.manufacture(&mut rng);
        let d1 = catalog[5].model.manufacture(&mut rng);
        let d2 = catalog[7].model.manufacture(&mut rng);
        let prints = prints_for(&[&d0, &d1, &d2], 5, 12);
        let truth: Vec<usize> = (0..15).map(|i| i / 5).collect();
        let g = AgFp::default()
            .with_known_k(3)
            .group(&dummy_data(15), &prints);
        let ari = srtd_metrics::adjusted_rand_index(g.labels(), &truth);
        assert!(ari > 0.9, "ARI {ari}");
    }

    #[test]
    fn elbow_estimates_a_sane_device_count() {
        let mut rng = StdRng::seed_from_u64(21);
        let catalog = standard_catalog();
        let d0 = catalog[2].model.manufacture(&mut rng);
        let d1 = catalog[7].model.manufacture(&mut rng);
        let prints = prints_for(&[&d0, &d1], 5, 22);
        let g = AgFp::default().group(&dummy_data(10), &prints);
        // Elbow should land near 2 devices: accept 2–4 groups, but the two
        // devices must never be merged.
        assert!(g.len() >= 2 && g.len() <= 4, "got {} groups", g.len());
        for i in 0..5 {
            for j in 5..10 {
                assert_ne!(g.group_of(i), g.group_of(j), "devices merged");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = StdRng::seed_from_u64(31);
        let d0 = standard_catalog()[0].model.manufacture(&mut rng);
        let prints = prints_for(&[&d0], 4, 32);
        let a = AgFp::default().group(&dummy_data(4), &prints);
        let b = AgFp::default().group(&dummy_data(4), &prints);
        assert_eq!(a, b);
    }

    #[test]
    fn single_account_is_singleton() {
        let mut rng = StdRng::seed_from_u64(41);
        let d0 = standard_catalog()[0].model.manufacture(&mut rng);
        let prints = prints_for(&[&d0], 1, 42);
        let g = AgFp::default().group(&dummy_data(1), &prints);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn hierarchical_backend_also_separates_devices() {
        let mut rng = StdRng::seed_from_u64(51);
        let catalog = standard_catalog();
        let d0 = catalog[2].model.manufacture(&mut rng);
        let d1 = catalog[7].model.manufacture(&mut rng);
        let prints = prints_for(&[&d0, &d1], 4, 52);
        let ag = AgFp::default().with_clustering(FpClustering::Hierarchical {
            threshold: 9.0,
            linkage: srtd_cluster::Linkage::Average,
        });
        let g = ag.group(&dummy_data(8), &prints);
        for i in 0..4 {
            for j in 4..8 {
                assert_ne!(g.group_of(i), g.group_of(j), "devices merged");
            }
        }
    }

    #[test]
    #[should_panic(expected = "one fingerprint per account")]
    fn missing_fingerprints_panic() {
        AgFp::default().group(&dummy_data(3), &[]);
    }
}
