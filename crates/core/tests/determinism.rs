//! End-to-end determinism: the same scenario seed must produce
//! byte-identical framework output — across repeated runs and across
//! worker-thread counts.
//!
//! The runtime's `parallel_map` assigns contiguous chunks and reassembles
//! results in input order, so every floating-point operation happens in
//! the same sequence regardless of how many threads execute the map. This
//! test is the contract check for that property on the real hot paths
//! (DTW dissimilarity matrices, k-means assignment, fingerprint feature
//! extraction).

use srtd_core::{
    AccountGrouping, AgFp, AgTr, AgTs, FrameworkResult, PerfectGrouping, SybilResistantTd,
};
use srtd_runtime::parallel::{max_threads, set_max_threads};
use srtd_runtime::rng::{Rng, SeedableRng, StdRng};
use srtd_sensing::{Scenario, ScenarioConfig};
use srtd_truth::SensingData;

fn run_framework(seed: u64) -> Vec<FrameworkResult> {
    let cfg = ScenarioConfig::paper_default().with_seed(seed);
    let s = Scenario::generate(&cfg);
    vec![
        SybilResistantTd::new(AgFp::default()).discover(&s.data, &s.fingerprints),
        SybilResistantTd::new(AgTs::default()).discover(&s.data, &s.fingerprints),
        SybilResistantTd::new(AgTr::default()).discover(&s.data, &s.fingerprints),
    ]
}

/// Bitwise comparison of the float outputs — `PartialEq` on f64 would
/// accept `-0.0 == 0.0`, but "byte-identical" must not.
fn assert_bitwise_equal(a: &[FrameworkResult], b: &[FrameworkResult], what: &str) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        let tx: Vec<Option<u64>> = x.truths.iter().map(|t| t.map(f64::to_bits)).collect();
        let ty: Vec<Option<u64>> = y.truths.iter().map(|t| t.map(f64::to_bits)).collect();
        assert_eq!(tx, ty, "truth bits differ: {what}");
        let wx: Vec<u64> = x.group_weights.iter().map(|w| w.to_bits()).collect();
        let wy: Vec<u64> = y.group_weights.iter().map(|w| w.to_bits()).collect();
        assert_eq!(wx, wy, "weight bits differ: {what}");
        assert_eq!(
            x.grouping.labels(),
            y.grouping.labels(),
            "labels differ: {what}"
        );
        assert_eq!(x.iterations, y.iterations, "iterations differ: {what}");
        let dx: Vec<u64> = x.convergence_trace.iter().map(|d| d.to_bits()).collect();
        let dy: Vec<u64> = y.convergence_trace.iter().map(|d| d.to_bits()).collect();
        assert_eq!(dx, dy, "convergence trace bits differ: {what}");
    }
}

#[test]
fn same_seed_is_byte_identical_across_runs_and_thread_counts() {
    let first = run_framework(3);
    let second = run_framework(3);
    assert_bitwise_equal(&first, &second, "two runs, same thread pool");

    // Force the parallel maps sequential, then to a fixed worker count;
    // the chunked order-preserving map must not change a single bit.
    let prior = max_threads();
    set_max_threads(1);
    let sequential = run_framework(3);
    set_max_threads(4);
    let four_way = run_framework(3);
    set_max_threads(prior);

    assert_bitwise_equal(&first, &sequential, "default pool vs 1 thread");
    assert_bitwise_equal(&first, &four_way, "default pool vs 4 threads");
}

/// A campaign big enough to take every parallel path in Algorithm 2:
/// well past the 64-task gate, with ≥200 groups and ≥500 tasks.
fn big_campaign(seed: u64) -> (SensingData, Vec<usize>) {
    const ACCOUNTS: usize = 220;
    const TASKS: usize = 520;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = SensingData::new(TASKS);
    let mut labels = Vec::with_capacity(ACCOUNTS);
    for a in 0..ACCOUNTS {
        // 200 legit singleton groups + the tail collapsed into 2 Sybil
        // groups → 202 groups total.
        labels.push(if a < 200 { a } else { 200 + (a - 200) / 10 });
        for t in 0..TASKS {
            if rng.gen_range(0f64..1.0) < 0.2 {
                let value = (t as f64 * 0.31).sin() * 15.0 + rng.gen_range(-2f64..2.0);
                data.add_report(a, t, value, t as f64 + a as f64 * 1e-3);
            }
        }
    }
    (data, labels)
}

/// The large-campaign regime drives the framework through the parallel
/// per-task build, the chunked loss reduction and the parallel truth
/// update; all of it must stay byte-identical across worker counts —
/// truths, group weights and the per-iteration convergence trace alike.
#[test]
fn parallel_algorithm2_is_byte_identical_across_thread_counts() {
    let (data, labels) = big_campaign(11);
    assert!(data.num_tasks() >= 500);
    let grouping = PerfectGrouping::new(labels).group(&data, &[]);
    assert!(
        grouping.len() >= 200,
        "want ≥200 groups, got {}",
        grouping.len()
    );
    let framework = SybilResistantTd::new(PerfectGrouping::new(vec![]));

    let prior = max_threads();
    set_max_threads(1);
    let sequential = framework.discover_with_grouping(&data, grouping.clone());
    set_max_threads(4);
    let four_way = framework.discover_with_grouping(&data, grouping);
    set_max_threads(prior);

    assert!(sequential.iterations > 0);
    assert!(!sequential.convergence_trace.is_empty());
    assert_bitwise_equal(
        std::slice::from_ref(&sequential),
        std::slice::from_ref(&four_way),
        "large campaign, 1 vs 4 threads",
    );
}

#[test]
fn different_seeds_differ() {
    // Sanity companion: the byte-identity above is not vacuous — another
    // seed produces different truths.
    let a = run_framework(3);
    let b = run_framework(4);
    assert_ne!(a[0].truths, b[0].truths);
}
