//! FFT throughput across transform sizes (the inner loop of feature
//! extraction).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use srtd_signal::fft::fft_real;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_real");
    for &n in &[256usize, 1024, 4096] {
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &signal, |b, s| {
            b.iter(|| fft_real(black_box(s)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);
