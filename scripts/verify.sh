#!/usr/bin/env bash
# Tier-1 verification, fully offline: the workspace has no external
# dependencies (everything lives in crates/runtime), so --offline must
# always succeed — any network fetch is a regression.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release --offline --workspace
cargo test -q --offline --workspace
echo "verify: OK"
