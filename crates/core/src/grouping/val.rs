//! AG-VAL: account grouping by report-value coordination (extension).
//!
//! Not one of the paper's three methods — an extension closing the gap
//! the adaptive-attacker experiment exposes: an attacker can randomize
//! its accounts' *behaviour* (per-account walks, disjoint task subsets,
//! fresh devices), but to manipulate the aggregate its accounts still
//! have to push *coordinated values*. This method groups accounts whose
//! claims agree suspiciously well on their common tasks.
//!
//! For accounts `i, j` sharing at least `min_common_tasks` tasks, the
//! coordination distance is the root-mean-square difference of their
//! claims on those tasks; pairs below a threshold `ψ` are connected and
//! connected components become groups — the same pipeline shape as
//! AG-TS/AG-TR, so it slots into the framework and into
//! [`crate::CombinedGrouping`] unchanged.
//!
//! The trade-off mirrors the paper's false-positive discussion: two
//! careful honest users with quiet sensors can also agree closely; ψ must
//! sit below the honest noise floor (≈ σ√2 for per-user noise σ) and
//! `min_common_tasks` high enough that agreement is statistically
//! meaningful.

use crate::grouping::{AccountGrouping, Grouping};
use srtd_graph::Graph;
use srtd_truth::SensingData;

/// Account grouping by value coordination.
///
/// # Examples
///
/// ```
/// use srtd_core::{AccountGrouping, AgVal};
/// use srtd_truth::SensingData;
///
/// let mut data = SensingData::new(3);
/// // Two accounts pushing the same fabricated values...
/// for (acct, off) in [(0, 0.0), (1, 0.05)] {
///     data.add_report(acct, 0, -50.0 + off, 100.0 + acct as f64);
///     data.add_report(acct, 1, -50.0 + off, 200.0 + acct as f64);
///     data.add_report(acct, 2, -50.1 + off, 300.0 + acct as f64);
/// }
/// // ...and an honest account with real (noisy) measurements.
/// data.add_report(2, 0, -81.3, 500.0);
/// data.add_report(2, 1, -74.8, 600.0);
/// data.add_report(2, 2, -69.2, 700.0);
/// let g = AgVal::default().group(&data, &[]);
/// assert_eq!(g.group_of(0), g.group_of(1));
/// assert_ne!(g.group_of(0), g.group_of(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgVal {
    psi: f64,
    min_common_tasks: usize,
}

impl Default for AgVal {
    /// `ψ = 0.75` dBm RMS with at least 2 common tasks: well below the
    /// honest per-user noise floor (σ ≥ 0.5 dBm ⇒ pairwise RMS ≥ ~0.7)
    /// yet above the jitter a copying attacker applies ("simple
    /// modification", §III-C).
    fn default() -> Self {
        Self {
            psi: 0.75,
            min_common_tasks: 2,
        }
    }
}

impl AgVal {
    /// Creates AG-VAL with coordination threshold `psi` (value units RMS)
    /// requiring `min_common_tasks` shared tasks.
    ///
    /// # Panics
    ///
    /// Panics if `psi` is not finite/positive or `min_common_tasks == 0`.
    pub fn new(psi: f64, min_common_tasks: usize) -> Self {
        assert!(psi.is_finite() && psi > 0.0, "threshold must be positive");
        assert!(min_common_tasks > 0, "need at least one common task");
        Self {
            psi,
            min_common_tasks,
        }
    }

    /// The coordination threshold ψ.
    pub fn psi(&self) -> f64 {
        self.psi
    }

    /// Minimum number of shared tasks before a pair is comparable.
    pub fn min_common_tasks(&self) -> usize {
        self.min_common_tasks
    }

    /// Pairwise coordination distances: RMS claim difference over common
    /// tasks, or `∞` for pairs with fewer than `min_common_tasks` shared
    /// tasks. Diagonal is 0.
    #[allow(clippy::needless_range_loop)] // symmetric matrix fill
    pub fn coordination_matrix(&self, data: &SensingData) -> Vec<Vec<f64>> {
        let n = data.num_accounts();
        let m = data.num_tasks();
        // values[a][t] = claim or NaN.
        let mut values = vec![vec![f64::NAN; m]; n];
        for r in data.reports() {
            values[r.account][r.task] = r.value;
        }
        let mut matrix = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in i + 1..n {
                let mut sum = 0.0;
                let mut common = 0usize;
                for t in 0..m {
                    let (a, b) = (values[i][t], values[j][t]);
                    if a.is_nan() || b.is_nan() {
                        continue;
                    }
                    sum += (a - b) * (a - b);
                    common += 1;
                }
                let d = if common >= self.min_common_tasks {
                    (sum / common as f64).sqrt()
                } else {
                    f64::INFINITY
                };
                matrix[i][j] = d;
                matrix[j][i] = d;
            }
        }
        matrix
    }
}

impl AccountGrouping for AgVal {
    #[allow(clippy::needless_range_loop)] // symmetric matrix fill
    fn group(&self, data: &SensingData, _fingerprints: &[Vec<f64>]) -> Grouping {
        let n = data.num_accounts();
        if n == 0 {
            return Grouping::from_labels(&[]);
        }
        let matrix = self.coordination_matrix(data);
        let mut graph = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                if matrix[i][j] < self.psi {
                    graph.add_edge(i, j, matrix[i][j]);
                }
            }
        }
        Grouping::new(graph.connected_components().into_groups())
    }

    fn name(&self) -> &'static str {
        "AG-VAL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coordinated_campaign() -> SensingData {
        let mut d = SensingData::new(4);
        // Honest accounts 0, 1: independent noisy readings.
        for (t, (v0, v1)) in [
            (-80.0, -78.2),
            (-71.5, -73.0),
            (-69.0, -66.8),
            (-85.0, -83.4),
        ]
        .into_iter()
        .enumerate()
        {
            d.add_report(0, t, v0, 100.0 + t as f64 * 60.0);
            d.add_report(1, t, v1, 5_000.0 + t as f64 * 60.0);
        }
        // Sybil accounts 2, 3, 4: the same fabricated -50 with jitter,
        // *different* walks (AG-TR-evading) and partial task overlap.
        for (acct, tasks, start) in [
            (2usize, vec![0usize, 1, 2], 9_000.0),
            (3, vec![1, 2, 3], 15_000.0),
            (4, vec![0, 2, 3], 21_000.0),
        ] {
            for (i, &t) in tasks.iter().enumerate() {
                let jitter = ((acct * 7 + i) % 5) as f64 * 0.1 - 0.2;
                d.add_report(acct, t, -50.0 + jitter, start + i as f64 * 60.0);
            }
        }
        d
    }

    #[test]
    fn catches_value_coordination_across_different_walks() {
        let d = coordinated_campaign();
        let g = AgVal::default().group(&d, &[]);
        assert_eq!(g.group_of(2), g.group_of(3));
        assert_eq!(g.group_of(3), g.group_of(4));
        assert_ne!(g.group_of(0), g.group_of(2));
        assert_ne!(g.group_of(0), g.group_of(1));
    }

    #[test]
    fn trajectory_grouping_misses_what_values_catch() {
        // The same campaign defeats AG-TR (walks are hours apart) —
        // documenting why AG-VAL earns its place.
        use crate::grouping::AgTr;
        let d = coordinated_campaign();
        let tr = AgTr::default().group(&d, &[]);
        let sybil_grouped = tr.group_of(2) == tr.group_of(3) && tr.group_of(3) == tr.group_of(4);
        assert!(!sybil_grouped, "AG-TR should be evaded by design here");
    }

    #[test]
    fn coordination_matrix_values() {
        let mut d = SensingData::new(2);
        d.add_report(0, 0, -50.0, 0.0);
        d.add_report(0, 1, -60.0, 1.0);
        d.add_report(1, 0, -50.0, 2.0);
        d.add_report(1, 1, -61.0, 3.0);
        let m = AgVal::default().coordination_matrix(&d);
        // RMS of (0, 1) over 2 tasks = sqrt(1/2).
        assert!((m[0][1] - (0.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(m[0][0], 0.0);
    }

    #[test]
    fn too_few_common_tasks_means_incomparable() {
        let mut d = SensingData::new(3);
        d.add_report(0, 0, -50.0, 0.0);
        d.add_report(1, 1, -50.0, 1.0);
        d.add_report(1, 2, -50.0, 2.0);
        // No common tasks at all.
        let g = AgVal::default().group(&d, &[]);
        assert_ne!(g.group_of(0), g.group_of(1));
        let m = AgVal::default().coordination_matrix(&d);
        assert_eq!(m[0][1], f64::INFINITY);
    }

    #[test]
    fn honest_noise_floor_keeps_legit_pairs_apart() {
        // Two honest users whose noise is >= 0.5 dBm: their pairwise RMS
        // stays above psi with overwhelming probability; here a fixed
        // instance 1.3-1.8 dBm apart.
        let mut d = SensingData::new(3);
        for (t, (a, b)) in [(-80.0, -81.5), (-70.0, -68.7), (-75.0, -76.4)]
            .into_iter()
            .enumerate()
        {
            d.add_report(0, t, a, t as f64);
            d.add_report(1, t, b, 100.0 + t as f64);
        }
        let g = AgVal::default().group(&d, &[]);
        assert_ne!(g.group_of(0), g.group_of(1));
    }

    #[test]
    fn empty_data_yields_empty_grouping() {
        let g = AgVal::default().group(&SensingData::new(2), &[]);
        assert!(g.is_empty());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_threshold_rejected() {
        AgVal::new(0.0, 2);
    }
}
