//! Ablation: which Table-II features carry the fingerprint?
//!
//! The paper extracts 9 temporal + 11 spectral features per stream
//! (Table II) without asking which ones matter. This ablation clusters
//! the Fig. 2 setup (3 phones × 5 captures, k = 3) on feature subsets:
//! temporal-only, spectral-only, first-moment-only (means), and the full
//! set, measuring device ARI.
//!
//! Run with: `cargo run -p srtd-bench --release --bin exp_ablation_features [seeds]`

use srtd_bench::table::Table;
use srtd_cluster::{KMeans, KMeansConfig};
use srtd_fingerprint::{catalog, fingerprint_features, CaptureConfig};
use srtd_metrics::adjusted_rand_index;
use srtd_runtime::rng::SeedableRng;
use srtd_runtime::rng::StdRng;
use srtd_signal::features::standardize;

/// Per-stream feature indices (each of the 4 streams contributes 20
/// features in Table II order: 0..9 temporal, 9..20 spectral).
fn project(features: &[Vec<f64>], keep_per_stream: &[usize]) -> Vec<Vec<f64>> {
    features
        .iter()
        .map(|f| {
            let mut out = Vec::with_capacity(4 * keep_per_stream.len());
            for stream in 0..4 {
                for &idx in keep_per_stream {
                    out.push(f[stream * 20 + idx]);
                }
            }
            out
        })
        .collect()
}

fn run(seed: u64, keep: &[usize]) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let models = catalog::standard_catalog();
    let phones = [
        models[2].model.manufacture(&mut rng),
        models[5].model.manufacture(&mut rng),
        models[7].model.manufacture(&mut rng),
    ];
    let cfg = CaptureConfig::paper_default();
    let mut features = Vec::new();
    let mut truth = Vec::new();
    for (d, phone) in phones.iter().enumerate() {
        for _ in 0..5 {
            features.push(fingerprint_features(&phone.capture(&cfg, &mut rng)));
            truth.push(d);
        }
    }
    let projected = project(&features, keep);
    let (standardized, _) = standardize(&projected);
    let clusters = KMeans::new(KMeansConfig::new(3)).fit(&standardized);
    adjusted_rand_index(&clusters.assignments, &truth)
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    println!("Ablation — Table-II feature subsets ({seeds} seeds, 3 phones x 5 captures)\n");
    let all: Vec<usize> = (0..20).collect();
    let temporal: Vec<usize> = (0..9).collect();
    let spectral: Vec<usize> = (9..20).collect();
    let means_only = vec![0usize]; // feature 1: the stream mean (bias!)
    let shape_only: Vec<usize> = vec![2, 3, 12, 13, 14, 16]; // skew/kurtosis/flatness/entropy
    let subsets: Vec<(&str, &[usize])> = vec![
        ("all 20 (paper)", &all),
        ("temporal 9", &temporal),
        ("spectral 11", &spectral),
        ("stream means only", &means_only),
        ("shape moments only", &shape_only),
    ];
    let mut t = Table::new(["subset", "dims", "device ARI"].map(String::from).to_vec());
    let mut results = Vec::new();
    for (name, keep) in &subsets {
        let ari: f64 = (0..seeds).map(|s| run(s, keep)).sum::<f64>() / seeds as f64;
        results.push((name.to_string(), ari));
        t.add_row(vec![
            name.to_string(),
            (keep.len() * 4).to_string(),
            format!("{ari:.3}"),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape: the stream means alone (4 numbers!) carry most");
    println!("of the signature — per-chip *bias* is the dominant imperfection,");
    println!("matching the MEMS physics of §III-D. Temporal features contain");
    println!("the means and score close to the full set; spectral features");
    println!("alone still work (resonance + noise floor) but with more");
    println!("session variance; pure shape moments (no location, no scale)");
    println!("discard the bias and degrade most.");
    let full = results[0].1;
    assert!(full > 0.75, "full feature set should group well: {full}");
    let means = results[3].1;
    assert!(
        means > full - 0.25,
        "stream means should be competitive: {means} vs {full}"
    );
    let shape = results[4].1;
    assert!(
        shape < full,
        "shape-only should lose information: {shape} vs {full}"
    );
    println!("\n[shape checks passed]");
}
