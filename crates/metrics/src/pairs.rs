//! Pair-level diagnostics of a grouping against a reference partition.
//!
//! ARI condenses grouping quality to one number; diagnosing *why* a
//! grouping scores low needs the underlying pair counts: how many
//! same-owner pairs were found (recall), and how many found pairs were
//! real (precision). False positives here are exactly the paper's
//! "two legitimate users … considered as accounts from a Sybil attacker"
//! failure mode.

use crate::contingency::ContingencyTable;

/// Pair-level confusion counts and derived rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairDiagnostics {
    /// Pairs grouped together that share a reference class (hits).
    pub true_positive_pairs: u128,
    /// Pairs grouped together that do *not* share a reference class — the
    /// false-positive merges the paper warns about.
    pub false_positive_pairs: u128,
    /// Same-class pairs the grouping failed to merge.
    pub false_negative_pairs: u128,
    /// Pairs correctly kept apart.
    pub true_negative_pairs: u128,
}

impl PairDiagnostics {
    /// Compares `predicted` grouping labels with `reference` labels.
    ///
    /// # Panics
    ///
    /// Panics if the labelings have different lengths.
    pub fn from_labels(predicted: &[usize], reference: &[usize]) -> Self {
        assert_eq!(
            predicted.len(),
            reference.len(),
            "labelings must cover the same items"
        );
        let t = ContingencyTable::from_labels(predicted, reference);
        let tp = t.pair_agreements();
        let predicted_pairs = t.row_pairs();
        let reference_pairs = t.col_pairs();
        let n = predicted.len() as u128;
        let total = n * n.saturating_sub(1) / 2;
        let fp = predicted_pairs - tp;
        let fn_ = reference_pairs - tp;
        let tn = total - tp - fp - fn_;
        Self {
            true_positive_pairs: tp,
            false_positive_pairs: fp,
            false_negative_pairs: fn_,
            true_negative_pairs: tn,
        }
    }

    /// Fraction of predicted-together pairs that are truly together;
    /// `1.0` when nothing was merged (vacuously precise).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positive_pairs + self.false_positive_pairs;
        if denom == 0 {
            return 1.0;
        }
        self.true_positive_pairs as f64 / denom as f64
    }

    /// Fraction of truly-together pairs the grouping found; `1.0` when the
    /// reference has no non-trivial groups.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positive_pairs + self.false_negative_pairs;
        if denom == 0 {
            return 1.0;
        }
        self.true_positive_pairs as f64 / denom as f64
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert, prop_assert_eq};

    #[test]
    fn perfect_grouping_is_perfect() {
        let d = PairDiagnostics::from_labels(&[0, 0, 1, 1], &[5, 5, 9, 9]);
        assert_eq!(d.false_positive_pairs, 0);
        assert_eq!(d.false_negative_pairs, 0);
        assert_eq!(d.precision(), 1.0);
        assert_eq!(d.recall(), 1.0);
        assert_eq!(d.f1(), 1.0);
    }

    #[test]
    fn all_singletons_have_perfect_precision_zero_recall() {
        let d = PairDiagnostics::from_labels(&[0, 1, 2, 3], &[0, 0, 1, 1]);
        assert_eq!(d.precision(), 1.0); // vacuous: nothing merged
        assert_eq!(d.recall(), 0.0);
        assert_eq!(d.f1(), 0.0);
    }

    #[test]
    fn one_big_group_has_perfect_recall_low_precision() {
        let d = PairDiagnostics::from_labels(&[0, 0, 0, 0], &[0, 0, 1, 1]);
        assert_eq!(d.recall(), 1.0);
        // 6 predicted pairs, 2 correct.
        assert!((d.precision() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn counts_on_known_example() {
        // predicted {0,1},{2,3}; truth {0,1,2},{3}.
        let d = PairDiagnostics::from_labels(&[0, 0, 1, 1], &[0, 0, 0, 1]);
        assert_eq!(d.true_positive_pairs, 1); // (0,1)
        assert_eq!(d.false_positive_pairs, 1); // (2,3)
        assert_eq!(d.false_negative_pairs, 2); // (0,2), (1,2)
        assert_eq!(d.true_negative_pairs, 2); // (0,3), (1,3)
    }

    #[test]
    #[should_panic(expected = "same items")]
    fn length_mismatch_panics() {
        PairDiagnostics::from_labels(&[0], &[0, 1]);
    }

    fn label_pairs(
        rng: &mut srtd_runtime::rng::StdRng,
        len: std::ops::Range<usize>,
    ) -> Vec<(usize, usize)> {
        prop::vec_with(rng, len, |r| {
            (r.gen_range(0usize..4), r.gen_range(0usize..4))
        })
    }

    /// Confusion counts always partition the full pair set, and the
    /// rates stay in [0, 1].
    #[test]
    fn counts_partition_all_pairs() {
        prop::check(
            |rng| label_pairs(rng, 0..40),
            |labels| {
                let a: Vec<usize> = labels.iter().map(|l| l.0).collect();
                let b: Vec<usize> = labels.iter().map(|l| l.1).collect();
                let d = PairDiagnostics::from_labels(&a, &b);
                let n = a.len() as u128;
                let total = n * n.saturating_sub(1) / 2;
                prop_assert_eq!(
                    d.true_positive_pairs
                        + d.false_positive_pairs
                        + d.false_negative_pairs
                        + d.true_negative_pairs,
                    total
                );
                for rate in [d.precision(), d.recall(), d.f1()] {
                    prop_assert!((0.0..=1.0).contains(&rate));
                }
                Ok(())
            },
        );
    }

    /// Symmetric roles: swapping predicted and reference swaps FP/FN.
    #[test]
    fn swap_exchanges_fp_fn() {
        prop::check(
            |rng| label_pairs(rng, 0..40),
            |labels| {
                let a: Vec<usize> = labels.iter().map(|l| l.0).collect();
                let b: Vec<usize> = labels.iter().map(|l| l.1).collect();
                let ab = PairDiagnostics::from_labels(&a, &b);
                let ba = PairDiagnostics::from_labels(&b, &a);
                prop_assert_eq!(ab.true_positive_pairs, ba.true_positive_pairs);
                prop_assert_eq!(ab.false_positive_pairs, ba.false_negative_pairs);
                prop_assert_eq!(ab.false_negative_pairs, ba.false_positive_pairs);
                Ok(())
            },
        );
    }
}
