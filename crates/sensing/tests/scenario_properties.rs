//! Property tests over randomly configured campaigns.

use srtd_runtime::prop::{self, PropConfig};
use srtd_runtime::rng::{Rng, StdRng};
use srtd_runtime::{prop_assert, prop_assert_eq};
use srtd_sensing::{AttackType, AttackerSpec, Scenario, ScenarioConfig};

/// Scenario generation is comparatively expensive, so run fewer cases
/// than the harness default (mirrors the old 24-case proptest config).
fn cases() -> PropConfig {
    PropConfig {
        cases: 24,
        ..PropConfig::default()
    }
}

fn config(rng: &mut StdRng) -> ScenarioConfig {
    let tasks = rng.gen_range(2usize..20);
    let legit = rng.gen_range(1usize..12);
    let attackers = rng.gen_range(0usize..3);
    let accounts = rng.gen_range(1usize..7);
    let multi = rng.gen_bool(0.5);
    let la = rng.gen_range(0.15f64..1.0);
    let aa = rng.gen_range(0.15f64..1.0);
    let seed = rng.gen_range(0u64..1000);
    let spec = AttackerSpec {
        accounts,
        attack_type: if multi {
            AttackType::MultiDevice { devices: 2 }
        } else {
            AttackType::SingleDevice
        },
        ..AttackerSpec::paper_attack_i()
    };
    ScenarioConfig {
        num_tasks: tasks,
        num_legit: legit,
        attackers: vec![spec; attackers],
        ..ScenarioConfig::paper_default()
    }
    .with_seed(seed)
    .with_activeness(la.min(1.0), aa.min(1.0))
}

/// Structural invariants hold for any configuration: account counts,
/// label lengths, fingerprint dimensionality, task-count bounds,
/// report sanity.
#[test]
fn generated_campaigns_are_structurally_sound() {
    prop::check_with(cases(), config, |cfg| {
        let s = Scenario::generate(cfg);
        let expected_accounts =
            cfg.num_legit + cfg.attackers.iter().map(|a| a.accounts).sum::<usize>();
        prop_assert_eq!(s.num_accounts(), expected_accounts);
        prop_assert_eq!(s.owners.len(), expected_accounts);
        prop_assert_eq!(s.devices.len(), expected_accounts);
        prop_assert_eq!(s.is_sybil.len(), expected_accounts);
        prop_assert_eq!(s.fingerprints.len(), expected_accounts);
        prop_assert!(s.fingerprints.iter().all(|f| f.len() == 80));
        prop_assert_eq!(s.ground_truth.len(), cfg.num_tasks);
        // Every account performed between 1 and m tasks; legit accounts
        // match the activeness formula exactly.
        let legit_k = cfg.tasks_per_account(cfg.legit_activeness);
        for a in 0..s.num_accounts() {
            let k = s.data.tasks_of(a).len();
            prop_assert!(k >= 1 && k <= cfg.num_tasks);
            if !s.is_sybil[a] {
                prop_assert_eq!(k, legit_k);
            }
        }
        // Reports reference valid accounts/tasks with finite values.
        for r in s.data.reports() {
            prop_assert!(r.account < expected_accounts);
            prop_assert!(r.task < cfg.num_tasks);
            prop_assert!(r.value.is_finite() && r.timestamp.is_finite());
            prop_assert!(r.timestamp >= 0.0);
        }
        Ok(())
    });
}

/// Owner labels are consistent with the Sybil flags: legitimate owners
/// hold exactly one account, attacker owners hold `accounts` many, and
/// device sharing happens only inside an owner.
#[test]
fn ownership_structure_is_consistent() {
    prop::check_with(cases(), config, |cfg| {
        let s = Scenario::generate(cfg);
        let mut by_owner: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for a in 0..s.num_accounts() {
            by_owner.entry(s.owners[a]).or_default().push(a);
        }
        for (&owner, accounts) in &by_owner {
            let sybil = s.is_sybil[accounts[0]];
            prop_assert!(
                accounts.iter().all(|&a| s.is_sybil[a] == sybil),
                "owner {owner} mixes sybil and legit accounts"
            );
            if !sybil {
                prop_assert_eq!(accounts.len(), 1);
            }
        }
        // A device never serves two different owners.
        let mut device_owner: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for a in 0..s.num_accounts() {
            if let Some(&o) = device_owner.get(&s.devices[a]) {
                prop_assert_eq!(o, s.owners[a], "device shared across owners");
            } else {
                device_owner.insert(s.devices[a], s.owners[a]);
            }
        }
        Ok(())
    });
}

/// Generation is a pure function of the config.
#[test]
fn generation_is_deterministic() {
    prop::check_with(cases(), config, |cfg| {
        let a = Scenario::generate(cfg);
        let b = Scenario::generate(cfg);
        prop_assert_eq!(a.data, b.data);
        prop_assert_eq!(a.fingerprints, b.fingerprints);
        prop_assert_eq!(a.owners, b.owners);
        Ok(())
    });
}
