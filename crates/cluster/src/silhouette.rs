//! Silhouette score — an internal clustering-quality index.

use crate::squared_distance;

/// Mean silhouette coefficient of a clustering, in `[-1, 1]`.
///
/// For each point, `s = (b − a) / max(a, b)` where `a` is the mean distance
/// to its own cluster and `b` the smallest mean distance to another
/// cluster. Points in singleton clusters contribute `0`, the scikit-learn
/// convention. Returns `0.0` when fewer than two clusters exist (the score
/// is undefined there, and `0.0` keeps sweep code total).
///
/// Distances are Euclidean.
///
/// # Panics
///
/// Panics if `points` and `assignments` have different lengths.
///
/// # Examples
///
/// ```
/// use srtd_cluster::silhouette_score;
///
/// let points = vec![vec![0.0], vec![0.1], vec![10.0], vec![10.1]];
/// let good = silhouette_score(&points, &[0, 0, 1, 1]);
/// let bad = silhouette_score(&points, &[0, 1, 0, 1]);
/// assert!(good > 0.9);
/// assert!(bad < 0.0);
/// ```
pub fn silhouette_score(points: &[Vec<f64>], assignments: &[usize]) -> f64 {
    assert_eq!(
        points.len(),
        assignments.len(),
        "each point needs exactly one cluster assignment"
    );
    let n = points.len();
    if n == 0 {
        return 0.0;
    }
    let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
    let mut cluster_sizes = vec![0usize; k];
    for &a in assignments {
        cluster_sizes[a] += 1;
    }
    if cluster_sizes.iter().filter(|&&s| s > 0).count() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for (i, p) in points.iter().enumerate() {
        let own = assignments[i];
        if cluster_sizes[own] <= 1 {
            continue; // contributes 0
        }
        // Mean distance to each cluster.
        let mut sums = vec![0.0f64; k];
        for (q, &a) in points.iter().zip(assignments) {
            sums[a] += squared_distance(p, q).sqrt();
        }
        let a_score = sums[own] / (cluster_sizes[own] - 1) as f64;
        let b_score = (0..k)
            .filter(|&c| c != own && cluster_sizes[c] > 0)
            .map(|c| sums[c] / cluster_sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a_score.max(b_score);
        if denom > 0.0 {
            total += (b_score - a_score) / denom;
        }
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert};

    #[test]
    fn perfect_separation_scores_high() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![100.0, 0.0],
            vec![100.1, 0.0],
        ];
        assert!(silhouette_score(&pts, &[0, 0, 1, 1]) > 0.99);
    }

    #[test]
    fn single_cluster_is_zero() {
        let pts = vec![vec![0.0], vec![1.0]];
        assert_eq!(silhouette_score(&pts, &[0, 0]), 0.0);
    }

    #[test]
    fn singletons_contribute_zero() {
        let pts = vec![vec![0.0], vec![5.0], vec![10.0]];
        let s = silhouette_score(&pts, &[0, 1, 2]);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(silhouette_score(&[], &[]), 0.0);
    }

    #[test]
    fn score_is_bounded() {
        prop::check(
            |rng| {
                prop::vec_with(rng, 2..30, |r| {
                    (r.gen_range(0.0f64..10.0), r.gen_range(0usize..3))
                })
            },
            |data| {
                let pts: Vec<Vec<f64>> = data.iter().map(|d| vec![d.0]).collect();
                let labels: Vec<usize> = data.iter().map(|d| d.1).collect();
                let s = silhouette_score(&pts, &labels);
                prop_assert!((-1.0..=1.0).contains(&s));
                Ok(())
            },
        );
    }
}
