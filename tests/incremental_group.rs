//! Incremental re-grouping equivalence: `EpochEngine::run_epoch_incremental`
//! must publish snapshots bitwise-identical to the batch `run_epoch` path
//! (which re-groups from scratch every epoch) across multi-epoch arrival
//! patterns — growth-only epochs that take the pure union-find merge path,
//! steady-state epochs with nothing dirty, and epochs that touch existing
//! accounts and force the kept+fresh edge rebuild. A
//! `ComponentLabeling::from_edges` oracle over the full decision-edge list
//! pins both against an independent batch implementation.

use sybil_td::core::{AgTr, AgTs, EdgeGrouping, Grouping, SybilResistantTd};
use sybil_td::graph::ComponentLabeling;
use sybil_td::platform::{EpochConfig, EpochEngine, EpochSnapshot};
use sybil_td::runtime::rng::{Rng, SeedableRng, StdRng};

/// Snapshot equality minus `duration_ns` (a wall-clock fact, the only
/// non-deterministic field).
fn assert_snapshots_match(batch: &EpochSnapshot, incremental: &EpochSnapshot, context: &str) {
    assert_eq!(batch.epoch, incremental.epoch, "{context}: epoch");
    assert_eq!(
        batch.generation, incremental.generation,
        "{context}: generation"
    );
    assert_eq!(
        batch.num_accounts, incremental.num_accounts,
        "{context}: accounts"
    );
    assert_eq!(
        batch.num_reports, incremental.num_reports,
        "{context}: reports"
    );
    assert_eq!(batch.folded, incremental.folded, "{context}: folded");
    assert_eq!(batch.labels, incremental.labels, "{context}: labels");
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&batch.group_weights),
        bits(&incremental.group_weights),
        "{context}: group weights"
    );
    let tbits = |xs: &[Option<f64>]| {
        xs.iter()
            .map(|x| x.map_or(u64::MAX, f64::to_bits))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        tbits(&batch.truths),
        tbits(&incremental.truths),
        "{context}: truths"
    );
    assert_eq!(
        batch.iterations, incremental.iterations,
        "{context}: iterations"
    );
    assert_eq!(
        batch.converged, incremental.converged,
        "{context}: converged"
    );
    assert_eq!(
        batch.warm_started, incremental.warm_started,
        "{context}: warm_started"
    );
}

/// Drives a batch engine and an incremental engine through the same
/// ingest epochs and checks every published snapshot pair, plus the
/// from-edges oracle on the final state.
fn assert_incremental_matches_batch<G>(
    grouping: G,
    num_tasks: usize,
    epochs: &[Vec<(usize, usize, f64, f64)>],
) where
    G: EdgeGrouping + Clone,
{
    let config = EpochConfig::default();
    let mut batch = EpochEngine::new(SybilResistantTd::new(grouping.clone()), num_tasks, config);
    let mut incremental =
        EpochEngine::new(SybilResistantTd::new(grouping.clone()), num_tasks, config);
    for (e, reports) in epochs.iter().enumerate() {
        for &(account, task, value, ts) in reports {
            batch
                .ingest(account, task, value, ts)
                .expect("batch ingest");
            incremental
                .ingest(account, task, value, ts)
                .expect("incremental ingest");
        }
        let sb = batch.run_epoch();
        let si = incremental.run_epoch_incremental();
        assert_snapshots_match(&sb, &si, &format!("epoch {}", e + 1));
    }
    // Oracle: an independent batch rebuild from the full decision-edge
    // list must agree with what the incremental engine converged to.
    let data = incremental.data();
    let edges = grouping.decision_edges(data, None);
    let oracle = ComponentLabeling::from_edges(data.num_accounts(), edges);
    let oracle_grouping = Grouping::new(oracle.into_groups());
    let direct = grouping.group(data, &[]);
    assert_eq!(
        oracle_grouping.groups(),
        direct.groups(),
        "oracle vs group()"
    );
    assert_eq!(
        incremental.latest().labels,
        direct.labels(),
        "incremental labels vs from-scratch group()"
    );
}

/// Epoch schedule with all three incremental regimes: initial fill with a
/// Sybil ring, growth-only arrivals (pure merge), a steady-state epoch,
/// and late reports for existing accounts (rebuild).
fn ring_epochs(seed: u64, num_tasks: usize) -> Vec<Vec<(usize, usize, f64, f64)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut epochs = Vec::new();

    // Epoch 1: accounts 0..6. Accounts 3..6 replay one walk (a ring).
    let mut first = Vec::new();
    for a in 0..3usize {
        for k in 0..4usize {
            let t = (a * 5 + k * 3) % num_tasks;
            first.push((
                a,
                t,
                rng.gen_range(-80f64..-60.0),
                (a * 900 + k * 200) as f64,
            ));
        }
    }
    let walk: Vec<(usize, f64)> = (0..4)
        .map(|k| ((7 + k * 2) % num_tasks, 400.0 + k as f64 * 150.0))
        .collect();
    for member in 0..3usize {
        let account = 3 + member;
        for &(t, ts) in &walk {
            first.push((account, t, -50.0, ts + member as f64 * 4.0));
        }
    }
    epochs.push(first);

    // Epoch 2: growth only — two new accounts, one joining the ring's
    // walk (merges into the existing component without a rebuild).
    let mut second = Vec::new();
    for k in 0..4usize {
        let t = (k * 4 + 1) % num_tasks;
        second.push((
            6,
            t,
            rng.gen_range(-80f64..-60.0),
            5000.0 + k as f64 * 180.0,
        ));
    }
    for &(t, ts) in &walk {
        second.push((7, t, -50.0, ts + 12.0));
    }
    epochs.push(second);

    // Epoch 3: steady state — nothing dirty, pure republish.
    epochs.push(Vec::new());

    // Epoch 4: late reports for existing accounts 0 and 3 — their cached
    // edges drop and the incremental path must rebuild.
    let mut fourth = Vec::new();
    for (a, k) in [(0usize, 0usize), (0, 1), (3, 0)] {
        let t = (11 + a * 3 + k * 5) % num_tasks;
        fourth.push((
            a,
            t,
            rng.gen_range(-80f64..-60.0),
            9000.0 + (a + k) as f64 * 90.0,
        ));
    }
    epochs.push(fourth);

    epochs
}

#[test]
fn ag_tr_incremental_epochs_match_batch_rebuild() {
    assert_incremental_matches_batch(AgTr::default(), 30, &ring_epochs(1, 30));
}

#[test]
fn ag_ts_incremental_epochs_match_batch_rebuild() {
    assert_incremental_matches_batch(AgTs::new(0.0), 30, &ring_epochs(2, 30));
}

#[test]
fn random_arrival_schedules_match_batch_rebuild() {
    // Randomized multi-epoch schedules: arbitrary interleavings of new
    // and existing accounts, including duplicate-task rejections.
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let num_tasks = 20usize;
        let mut used: Vec<Vec<usize>> = Vec::new();
        let mut epochs = Vec::new();
        for _ in 0..4 {
            let mut reports = Vec::new();
            let arrivals = rng.gen_range(0usize..10);
            for _ in 0..arrivals {
                let account = rng.gen_range(0usize..12);
                if used.len() <= account {
                    used.resize(account + 1, Vec::new());
                }
                let task = rng.gen_range(0usize..num_tasks);
                if used[account].contains(&task) {
                    continue;
                }
                used[account].push(task);
                reports.push((
                    account,
                    task,
                    rng.gen_range(-90f64..-40.0),
                    rng.gen_range(0f64..7200.0),
                ));
            }
            epochs.push(reports);
        }
        assert_incremental_matches_batch(AgTr::default(), num_tasks, &epochs);
        assert_incremental_matches_batch(AgTs::new(0.0), num_tasks, &epochs);
    }
}

#[test]
fn interleaving_batch_epochs_invalidates_the_edge_cache_soundly() {
    // A `run_epoch` call between incremental epochs folds reports the edge
    // cache never saw; the next incremental epoch must detect the
    // generation mismatch and re-derive everything rather than trust
    // stale edges.
    let epochs = ring_epochs(3, 30);
    let config = EpochConfig::default();
    let mut batch = EpochEngine::new(SybilResistantTd::new(AgTr::default()), 30, config);
    let mut mixed = EpochEngine::new(SybilResistantTd::new(AgTr::default()), 30, config);
    for (e, reports) in epochs.iter().enumerate() {
        for &(account, task, value, ts) in reports {
            batch.ingest(account, task, value, ts).expect("ingest");
            mixed.ingest(account, task, value, ts).expect("ingest");
        }
        let sb = batch.run_epoch();
        // Alternate paths on the mixed engine.
        let sm = if e % 2 == 0 {
            mixed.run_epoch()
        } else {
            mixed.run_epoch_incremental()
        };
        assert_snapshots_match(&sb, &sm, &format!("mixed epoch {}", e + 1));
    }
}
