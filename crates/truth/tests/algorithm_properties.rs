//! Property tests that every truth discovery algorithm must satisfy.

use proptest::prelude::*;
use srtd_truth::{Catd, Crh, Gtm, MeanVote, MedianVote, SensingData, TruthDiscovery};

/// Generates a random campaign: up to 6 accounts × 5 tasks, each account
/// reporting a random subset with values in a bounded band.
fn campaign_strategy() -> impl Strategy<Value = SensingData> {
    proptest::collection::vec((0usize..6, 0usize..5, -100f64..100.0, 0f64..1e4), 1..40).prop_map(
        |raw| {
            let mut data = SensingData::new(5);
            let mut seen = std::collections::HashSet::new();
            for (account, task, value, ts) in raw {
                if seen.insert((account, task)) {
                    data.add_report(account, task, value, ts);
                }
            }
            data
        },
    )
}

fn algorithms() -> Vec<Box<dyn TruthDiscovery>> {
    vec![
        Box::new(Crh::default()),
        Box::new(Catd::default()),
        Box::new(Gtm::default()),
        Box::new(MeanVote),
        Box::new(MedianVote),
    ]
}

/// The closed-form algorithms, whose outputs are exact functions of the
/// input.
///
/// The iterative algorithms (CRH, CATD, GTM) are excluded from the
/// exact-equivariance properties: their winner-take-all weight maps are
/// *multistable* on adversarial inputs — several fixed points coexist, and
/// which one the iteration lands on can flip under one-ulp perturbations.
/// Their estimates remain inside the task hull either way (checked for all
/// algorithms above), which is the bound the Sybil-resistance analysis
/// relies on, and they are bitwise deterministic (checked below).
fn stable_algorithms() -> Vec<Box<dyn TruthDiscovery>> {
    vec![Box::new(MeanVote), Box::new(MedianVote)]
}

proptest! {
    /// Truth estimates always lie inside the convex hull of the reports
    /// for that task, and are `None` exactly for unreported tasks.
    #[test]
    fn estimates_stay_in_task_hull(data in campaign_strategy()) {
        for algo in algorithms() {
            let result = algo.discover(&data);
            prop_assert_eq!(result.truths.len(), data.num_tasks());
            for task in 0..data.num_tasks() {
                let values: Vec<f64> =
                    data.reports_for_task(task).iter().map(|r| r.value).collect();
                match result.truths[task] {
                    None => prop_assert!(values.is_empty(), "{}", algo.name()),
                    Some(estimate) => {
                        prop_assert!(!values.is_empty(), "{}", algo.name());
                        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
                        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                        prop_assert!(
                            estimate >= lo - 1e-6 && estimate <= hi + 1e-6,
                            "{}: task {} estimate {} outside [{}, {}]",
                            algo.name(), task, estimate, lo, hi
                        );
                    }
                }
            }
        }
    }

    /// Shifting every report by a constant shifts every estimate by the
    /// same constant (translation equivariance).
    #[test]
    fn translation_equivariance(data in campaign_strategy(), shift in -50f64..50.0) {
        let mut shifted = SensingData::new(data.num_tasks());
        for r in data.reports() {
            shifted.add_report(r.account, r.task, r.value + shift, r.timestamp);
        }
        for algo in stable_algorithms() {
            let base = algo.discover(&data);
            let moved = algo.discover(&shifted);
            for (a, b) in base.truths.iter().zip(&moved.truths) {
                match (a, b) {
                    (Some(x), Some(y)) => prop_assert!(
                        (x + shift - y).abs() < 1e-4 * (1.0 + x.abs()),
                        "{}: {} + {} != {}", algo.name(), x, shift, y
                    ),
                    (None, None) => {}
                    _ => prop_assert!(false, "{}: missing-task mismatch", algo.name()),
                }
            }
        }
    }

    /// Renumbering accounts never changes the estimates (algorithms must
    /// not depend on account identity).
    #[test]
    fn account_relabeling_invariance(data in campaign_strategy()) {
        let n = data.num_accounts().max(1);
        // Deterministic permutation: reverse.
        let mut relabeled = SensingData::new(data.num_tasks());
        for r in data.reports() {
            relabeled.add_report(n - 1 - r.account, r.task, r.value, r.timestamp);
        }
        for algo in stable_algorithms() {
            let a = algo.discover(&data);
            let b = algo.discover(&relabeled);
            for (x, y) in a.truths.iter().zip(&b.truths) {
                match (x, y) {
                    (Some(x), Some(y)) => prop_assert!(
                        (x - y).abs() < 1e-4 * (1.0 + x.abs()),
                        "{}: {} vs {}", algo.name(), x, y
                    ),
                    (None, None) => {}
                    _ => prop_assert!(false, "{}", algo.name()),
                }
            }
        }
    }

    /// Every algorithm is bitwise deterministic: the same input gives the
    /// same output.
    #[test]
    fn determinism(data in campaign_strategy()) {
        for algo in algorithms() {
            let a = algo.discover(&data);
            let b = algo.discover(&data);
            prop_assert_eq!(a, b, "{} is not deterministic", algo.name());
        }
    }

    /// Iterative algorithms terminate with sane outputs (CRH and GTM may
    /// legitimately hit their iteration cap when the weight map is
    /// multistable — see `stable_algorithms`), and weights are
    /// finite/non-negative.
    #[test]
    fn convergence_and_weight_sanity(data in campaign_strategy()) {
        for algo in algorithms() {
            let r = algo.discover(&data);
            if matches!(algo.name(), "Mean" | "Median" | "CATD") {
                prop_assert!(r.converged, "{} did not converge", algo.name());
            }
            prop_assert!(
                r.weights.iter().all(|w| w.is_finite() && *w >= 0.0),
                "{} produced bad weights {:?}", algo.name(), r.weights
            );
            prop_assert!(
                r.truths.iter().flatten().all(|t| t.is_finite()),
                "{} produced non-finite truths", algo.name()
            );
        }
    }
}
