//! Account grouping cost: the three methods on paper-scale and larger
//! campaigns.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use srtd_core::{AccountGrouping, AgFp, AgTr, AgTs};
use srtd_sensing::{Scenario, ScenarioConfig};

fn scenario(num_legit: usize) -> Scenario {
    let cfg = ScenarioConfig {
        num_legit,
        ..ScenarioConfig::paper_default()
    }
    .with_seed(5);
    Scenario::generate(&cfg)
}

fn bench_grouping(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouping");
    group.sample_size(20);
    for &n in &[8usize, 24, 64] {
        let s = scenario(n);
        group.bench_with_input(BenchmarkId::new("ag_fp", n), &s, |b, s| {
            b.iter(|| AgFp::default().group(black_box(&s.data), &s.fingerprints));
        });
        group.bench_with_input(BenchmarkId::new("ag_ts", n), &s, |b, s| {
            b.iter(|| AgTs::default().group(black_box(&s.data), &s.fingerprints));
        });
        group.bench_with_input(BenchmarkId::new("ag_tr", n), &s, |b, s| {
            b.iter(|| AgTr::default().group(black_box(&s.data), &s.fingerprints));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grouping);
criterion_main!(benches);
