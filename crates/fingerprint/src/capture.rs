//! Stationary hand-held sensor capture sessions.

use crate::device::DeviceInstance;
use crate::noise::{normal, normal3};
use srtd_runtime::json::{Json, ToJson};
use srtd_runtime::rng::Rng;

/// Standard gravity (m/s²).
pub const GRAVITY: f64 = 9.80665;

/// Configuration of a fingerprint capture session.
///
/// The paper asks each user to hold the phone still for 6 seconds at
/// sign-in while a script samples the motion sensors; browsers expose them
/// at O(100 Hz). [`CaptureConfig::paper_default`] matches that protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaptureConfig {
    /// Capture duration in seconds.
    pub duration_s: f64,
    /// Sensor sampling rate in Hz.
    pub sample_rate: f64,
    /// Amplitude of physiological hand tremor (m/s²). Tremor sits in the
    /// 8–12 Hz band and is what excites the chip resonance.
    pub tremor_amplitude: f64,
    /// Amplitude of tremor-induced rotation (rad/s).
    pub tremor_rotation: f64,
    /// Session-to-session bias drift σ (m/s² for the accelerometer, the
    /// same value scaled by 0.3 in rad/s for the gyroscope).
    ///
    /// MEMS bias is temperature-dependent: a phone pulled out of a warm
    /// pocket fingerprints slightly differently than a cold one. AG-FP
    /// assumes the fingerprint is stable across sessions; this knob
    /// quantifies how much drift that assumption tolerates
    /// (`exp_fingerprint_stability`). The default is 0 (the paper's
    /// controlled sign-in protocol).
    pub bias_drift: f64,
}

impl CaptureConfig {
    /// The paper's protocol: 6 seconds at 100 Hz with typical hand tremor.
    pub fn paper_default() -> Self {
        Self {
            duration_s: 6.0,
            sample_rate: 100.0,
            tremor_amplitude: 0.025,
            tremor_rotation: 0.015,
            bias_drift: 0.0,
        }
    }

    /// Replaces the session bias drift.
    ///
    /// # Panics
    ///
    /// Panics if `drift` is negative or non-finite.
    pub fn with_bias_drift(mut self, drift: f64) -> Self {
        assert!(
            drift >= 0.0 && drift.is_finite(),
            "drift must be non-negative"
        );
        self.bias_drift = drift;
        self
    }

    /// Number of samples in a capture.
    pub fn sample_count(&self) -> usize {
        (self.duration_s * self.sample_rate).round().max(1.0) as usize
    }
}

/// One recorded capture: parallel accelerometer and gyroscope samples.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorCapture {
    accel: Vec<[f64; 3]>,
    gyro: Vec<[f64; 3]>,
    sample_rate: f64,
}

impl SensorCapture {
    /// Wraps raw sample streams.
    ///
    /// # Panics
    ///
    /// Panics if the streams have different lengths or the rate is not
    /// positive.
    pub fn new(accel: Vec<[f64; 3]>, gyro: Vec<[f64; 3]>, sample_rate: f64) -> Self {
        assert_eq!(accel.len(), gyro.len(), "sensor streams must be parallel");
        assert!(
            sample_rate.is_finite() && sample_rate > 0.0,
            "sample rate must be positive"
        );
        Self {
            accel,
            gyro,
            sample_rate,
        }
    }

    /// Accelerometer samples (x, y, z) in m/s².
    pub fn accel(&self) -> &[[f64; 3]] {
        &self.accel
    }

    /// Gyroscope samples (x, y, z) in rad/s.
    pub fn gyro(&self) -> &[[f64; 3]] {
        &self.gyro
    }

    /// Sampling rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.accel.len()
    }

    /// Returns `true` for an empty capture.
    pub fn is_empty(&self) -> bool {
        self.accel.is_empty()
    }

    /// The orientation-independent accelerometer magnitude stream
    /// `|a(t)| = sqrt(ax² + ay² + az²)` (§IV-C).
    pub fn accel_magnitude(&self) -> Vec<f64> {
        self.accel
            .iter()
            .map(|a| (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt())
            .collect()
    }

    /// One gyroscope axis as a stream (`axis` in `0..3`).
    ///
    /// # Panics
    ///
    /// Panics if `axis >= 3`.
    pub fn gyro_axis(&self, axis: usize) -> Vec<f64> {
        assert!(axis < 3, "gyroscope has axes 0..3, got {axis}");
        self.gyro.iter().map(|w| w[axis]).collect()
    }

    /// The four fingerprint streams of §IV-C:
    /// `{|a(t)|, w_x(t), w_y(t), w_z(t)}`.
    pub fn streams(&self) -> [Vec<f64>; 4] {
        [
            self.accel_magnitude(),
            self.gyro_axis(0),
            self.gyro_axis(1),
            self.gyro_axis(2),
        ]
    }
}

impl DeviceInstance {
    /// Simulates one stationary hand-held capture on this device.
    ///
    /// The true signal is gravity (with a random per-session grip
    /// orientation) plus band-limited hand tremor; the chip then adds its
    /// resonance response, per-axis gain error, per-axis bias and white
    /// noise — the imperfections AG-FP fingerprints.
    pub fn capture<R: Rng + ?Sized>(&self, config: &CaptureConfig, rng: &mut R) -> SensorCapture {
        let n = config.sample_count();
        let dt = 1.0 / config.sample_rate;
        // Per-session grip: gravity direction tilted a few degrees off z.
        let tilt_x = normal(rng, 0.0, 0.06);
        let tilt_y = normal(rng, 0.0, 0.06);
        let g = [
            GRAVITY * tilt_x.sin(),
            GRAVITY * tilt_y.sin() * tilt_x.cos(),
            GRAVITY * tilt_x.cos() * tilt_y.cos(),
        ];
        // Tremor: two tones per axis in the physiological 9–11 Hz band with
        // random phase and strength per session.
        let two_pi = 2.0 * std::f64::consts::PI;
        let tremor_tone = |rng: &mut R| {
            (
                rng.gen_range(9.0..11.0),
                rng.gen_range(0.0..two_pi),
                rng.gen_range(0.7..1.0),
            )
        };
        let accel_tones: Vec<[(f64, f64, f64); 2]> = (0..3)
            .map(|_| [tremor_tone(rng), tremor_tone(rng)])
            .collect();
        let gyro_tones: Vec<[(f64, f64, f64); 2]> = (0..3)
            .map(|_| [tremor_tone(rng), tremor_tone(rng)])
            .collect();
        let resonance_phase = rng.gen_range(0.0..two_pi);
        // Session-level thermal bias drift. Skipped entirely at zero so
        // the default configuration consumes the same RNG stream as before
        // the knob existed (seeded scenarios stay reproducible).
        let (accel_drift, gyro_drift) = if config.bias_drift > 0.0 {
            (
                normal3(rng, 0.0, config.bias_drift),
                normal3(rng, 0.0, config.bias_drift * 0.3),
            )
        } else {
            ([0.0; 3], [0.0; 3])
        };

        let mut accel = Vec::with_capacity(n);
        let mut gyro = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64 * dt;
            let resonance =
                self.resonance_gain * (two_pi * self.resonance_hz * t + resonance_phase).sin();
            let mut a = [0.0; 3];
            let mut w = [0.0; 3];
            for axis in 0..3 {
                let tremor: f64 = accel_tones[axis]
                    .iter()
                    .map(|&(f, p, s)| s * config.tremor_amplitude * (two_pi * f * t + p).sin())
                    .sum();
                let truth = g[axis] + tremor + resonance;
                a[axis] = self.accel_scale[axis] * truth
                    + self.accel_bias[axis]
                    + accel_drift[axis]
                    + normal(rng, 0.0, self.accel_noise);
                let rot: f64 = gyro_tones[axis]
                    .iter()
                    .map(|&(f, p, s)| s * config.tremor_rotation * (two_pi * f * t + p).sin())
                    .sum();
                w[axis] = self.gyro_scale[axis] * rot
                    + self.gyro_bias[axis]
                    + gyro_drift[axis]
                    + normal(rng, 0.0, self.gyro_noise);
            }
            accel.push(a);
            gyro.push(w);
        }
        SensorCapture::new(accel, gyro, config.sample_rate)
    }
}

impl ToJson for CaptureConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("duration_s", self.duration_s.to_json()),
            ("sample_rate", self.sample_rate.to_json()),
            ("tremor_amplitude", self.tremor_amplitude.to_json()),
            ("tremor_rotation", self.tremor_rotation.to_json()),
            ("bias_drift", self.bias_drift.to_json()),
        ])
    }
}

impl ToJson for SensorCapture {
    fn to_json(&self) -> Json {
        Json::obj([
            ("sample_rate", self.sample_rate.to_json()),
            ("accel", self.accel.to_json()),
            ("gyro", self.gyro.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::standard_catalog;
    use srtd_runtime::rng::SeedableRng;
    use srtd_runtime::rng::StdRng;

    fn device(seed: u64) -> DeviceInstance {
        standard_catalog()[2]
            .model
            .manufacture(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn capture_has_expected_shape() {
        let cfg = CaptureConfig::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        let cap = device(0).capture(&cfg, &mut rng);
        assert_eq!(cap.len(), 600);
        assert_eq!(cap.sample_rate(), 100.0);
        assert_eq!(cap.accel().len(), cap.gyro().len());
    }

    #[test]
    fn accel_magnitude_hovers_near_gravity() {
        let cfg = CaptureConfig::paper_default();
        let mut rng = StdRng::seed_from_u64(2);
        let cap = device(0).capture(&cfg, &mut rng);
        let mags = cap.accel_magnitude();
        let mean: f64 = mags.iter().sum::<f64>() / mags.len() as f64;
        assert!((mean - GRAVITY).abs() < 0.5, "mean magnitude {mean}");
    }

    #[test]
    fn gyro_is_small_and_biased() {
        let cfg = CaptureConfig::paper_default();
        let mut rng = StdRng::seed_from_u64(3);
        let dev = device(0);
        let cap = dev.capture(&cfg, &mut rng);
        for axis in 0..3 {
            let stream = cap.gyro_axis(axis);
            let mean: f64 = stream.iter().sum::<f64>() / stream.len() as f64;
            // The time-average of tremor is ~0, so the stream mean recovers
            // the chip bias — exactly the signal AG-FP exploits.
            assert!((mean - dev.gyro_bias[axis]).abs() < 0.01);
        }
    }

    #[test]
    fn captures_differ_between_sessions_but_share_signature() {
        let cfg = CaptureConfig::paper_default();
        let dev = device(0);
        let mut rng = StdRng::seed_from_u64(4);
        let a = dev.capture(&cfg, &mut rng);
        let b = dev.capture(&cfg, &mut rng);
        assert_ne!(a.accel()[0], b.accel()[0]);
        // Bias survives across sessions: stream means stay close.
        let ma: f64 = a.gyro_axis(0).iter().sum::<f64>() / a.len() as f64;
        let mb: f64 = b.gyro_axis(0).iter().sum::<f64>() / b.len() as f64;
        assert!((ma - mb).abs() < 0.005);
    }

    #[test]
    fn streams_returns_four_parallel_streams() {
        let cfg = CaptureConfig::paper_default();
        let mut rng = StdRng::seed_from_u64(5);
        let cap = device(1).capture(&cfg, &mut rng);
        let streams = cap.streams();
        assert!(streams.iter().all(|s| s.len() == cap.len()));
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_streams_panic() {
        SensorCapture::new(vec![[0.0; 3]], vec![], 100.0);
    }

    #[test]
    #[should_panic(expected = "axes 0..3")]
    fn bad_axis_panics() {
        let cap = SensorCapture::new(vec![[0.0; 3]], vec![[0.0; 3]], 100.0);
        cap.gyro_axis(3);
    }
}
