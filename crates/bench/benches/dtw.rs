//! DTW cost across series lengths, full versus Sakoe–Chiba banded.

use srtd_runtime::bench::{black_box, Bench};
use srtd_timeseries::Dtw;

fn series(n: usize, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.11 + phase).sin() * 5.0)
        .collect()
}

fn main() {
    let mut group = Bench::new("dtw");
    for &n in &[50usize, 200, 800] {
        let a = series(n, 0.0);
        let b = series(n, 0.8);
        group.run(&format!("full/{n}"), || {
            Dtw::new().distance(black_box(&a), black_box(&b))
        });
        group.run(&format!("band16/{n}"), || {
            Dtw::new()
                .with_band(16)
                .distance(black_box(&a), black_box(&b))
        });
    }
}
