//! Sybil auditing: grouping results turned into an operator-facing report.

use srtd_core::Grouping;

/// One suspected Sybil cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuspectGroup {
    /// Group index in the underlying [`Grouping`].
    pub group: usize,
    /// The accounts in the cluster (sorted).
    pub accounts: Vec<usize>,
}

/// The outcome of [`crate::Platform::audit`].
///
/// The paper deliberately does *not* ban suspected accounts ("we do not
/// directly eliminate the data submitted by suspicious accounts since
/// there might be false-positives"); the audit therefore reports, it does
/// not enforce — the framework's weighting handles enforcement softly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    grouping: Grouping,
    method: &'static str,
    min_group_size: usize,
    effective_min_group_size: usize,
    suspects: Vec<SuspectGroup>,
    convicted: Vec<usize>,
}

impl AuditReport {
    pub(crate) fn build(grouping: Grouping, method: &'static str, min_group_size: usize) -> Self {
        // A Sybil cluster needs at least two accounts; thresholds of 0 or 1
        // would flag every singleton, so the filter clamps to 2. The clamp
        // is recorded, not silent: `min_group_size()` reports what was
        // requested and `effective_min_group_size()` what was applied.
        let effective_min_group_size = min_group_size.max(2);
        let suspects: Vec<SuspectGroup> = grouping
            .groups()
            .iter()
            .enumerate()
            .filter(|(_, members)| members.len() >= effective_min_group_size)
            .map(|(group, members)| SuspectGroup {
                group,
                accounts: members.clone(),
            })
            .collect();
        srtd_runtime::obs::event(
            "platform.audit",
            [
                ("method", srtd_runtime::json::Json::str(method)),
                (
                    "min_group_size",
                    srtd_runtime::json::ToJson::to_json(&min_group_size),
                ),
                (
                    "effective_min_group_size",
                    srtd_runtime::json::ToJson::to_json(&effective_min_group_size),
                ),
                (
                    "suspect_groups",
                    srtd_runtime::json::ToJson::to_json(&suspects.len()),
                ),
                (
                    "suspect_accounts",
                    srtd_runtime::json::ToJson::to_json(
                        &suspects.iter().map(|s| s.accounts.len()).sum::<usize>(),
                    ),
                ),
            ],
        );
        Self {
            grouping,
            method,
            min_group_size,
            effective_min_group_size,
            suspects,
            convicted: Vec::new(),
        }
    }

    /// Joins stochastic-audit convictions into the report: convicted
    /// accounts count as suspects regardless of their group's size
    /// (conviction rests on spot-check evidence, not on clustering).
    pub fn with_convictions(mut self, mut convicted: Vec<usize>) -> Self {
        convicted.sort_unstable();
        convicted.dedup();
        self.convicted = convicted;
        self
    }

    /// Accounts convicted by the stochastic audit (sorted; empty unless
    /// [`AuditReport::with_convictions`] was applied).
    pub fn convicted(&self) -> &[usize] {
        &self.convicted
    }

    /// The grouping method that produced this audit.
    pub fn method(&self) -> &'static str {
        self.method
    }

    /// The size threshold that was requested for flagging.
    ///
    /// The filter never flags clusters smaller than two accounts; see
    /// [`AuditReport::effective_min_group_size`] for the threshold actually
    /// applied.
    pub fn min_group_size(&self) -> usize {
        self.min_group_size
    }

    /// The size threshold actually applied: the requested
    /// [`AuditReport::min_group_size`] clamped up to 2, since a Sybil
    /// cluster needs at least a pair of accounts.
    pub fn effective_min_group_size(&self) -> usize {
        self.effective_min_group_size
    }

    /// The full grouping (suspected and unsuspected accounts alike).
    pub fn grouping(&self) -> &Grouping {
        &self.grouping
    }

    /// The flagged clusters, in group order.
    pub fn suspects(&self) -> &[SuspectGroup] {
        &self.suspects
    }

    /// Returns `true` if `account` sits in any flagged cluster or has
    /// been convicted by the stochastic audit.
    pub fn is_suspect(&self, account: usize) -> bool {
        self.convicted.binary_search(&account).is_ok()
            || self
                .suspects
                .iter()
                .any(|s| s.accounts.binary_search(&account).is_ok())
    }

    /// Fraction of accounts sitting in flagged clusters or convicted
    /// (counting each account once).
    pub fn suspect_share(&self) -> f64 {
        let n = self.grouping.num_accounts();
        if n == 0 {
            return 0.0;
        }
        let flagged = (0..n).filter(|&a| self.is_suspect(a)).count();
        flagged as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(labels: &[usize], min: usize) -> AuditReport {
        AuditReport::build(Grouping::from_labels(labels), "AG-TEST", min)
    }

    #[test]
    fn flags_groups_at_or_above_threshold() {
        // Groups: {0,1,2}, {3}, {4,5}.
        let r = report(&[0, 0, 0, 1, 2, 2], 3);
        assert_eq!(r.suspects().len(), 1);
        assert_eq!(r.suspects()[0].accounts, vec![0, 1, 2]);
        assert!(r.is_suspect(1));
        assert!(!r.is_suspect(3));
        assert!(!r.is_suspect(4));
        assert!((r.suspect_share() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn threshold_below_two_still_requires_a_pair() {
        // min_group_size 1 would flag every singleton — clamped to 2.
        let r = report(&[0, 1, 2], 1);
        assert!(r.suspects().is_empty());
        assert_eq!(r.suspect_share(), 0.0);
    }

    #[test]
    fn clamped_threshold_is_reported_not_silent() {
        // Regression: `min_group_size()` used to claim the requested value
        // while the filter quietly used `max(2)`. Both must now be visible.
        let r = report(&[0, 0, 1], 0);
        assert_eq!(r.min_group_size(), 0, "requested threshold preserved");
        assert_eq!(r.effective_min_group_size(), 2, "applied threshold");
        // The pair {0, 1} is flagged under the effective threshold.
        assert_eq!(r.suspects().len(), 1);
        assert_eq!(r.suspects()[0].accounts, vec![0, 1]);
        assert!(!r.is_suspect(2));
        // At or above 2 the requested and effective thresholds agree.
        let r3 = report(&[0, 0, 1], 3);
        assert_eq!(r3.min_group_size(), 3);
        assert_eq!(r3.effective_min_group_size(), 3);
    }

    #[test]
    fn convictions_join_the_suspect_set() {
        // Groups: {0,1,2}, {3}, {4}. Account 3 is convicted by audit.
        let r = report(&[0, 0, 0, 1, 2], 3).with_convictions(vec![3, 3]);
        assert_eq!(r.convicted(), &[3], "deduplicated");
        assert!(r.is_suspect(0), "grouping suspect");
        assert!(r.is_suspect(3), "convicted singleton counts as suspect");
        assert!(!r.is_suspect(4));
        assert!((r.suspect_share() - 0.8).abs() < 1e-12);
        // Overlap is not double counted.
        let r = report(&[0, 0, 0, 1, 2], 3).with_convictions(vec![0, 3]);
        assert!((r.suspect_share() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_platform_audits_cleanly() {
        let r = report(&[], 2);
        assert!(r.suspects().is_empty());
        assert_eq!(r.suspect_share(), 0.0);
        assert_eq!(r.method(), "AG-TEST");
    }
}
