//! Per-thread spectral scratch arenas.
//!
//! The batch feature path runs one FFT job per stream pair; before the
//! persistent worker pool, each job allocated a complex buffer, two full
//! split spectra and two magnitude vectors, all dropped at job end. With
//! pool threads surviving across batches, a `thread_local` arena turns
//! those into one-time allocations per thread: jobs check the arena out,
//! overwrite every slot they read (the FFT loaders clear-and-resize, the
//! magnitude writers clear-and-extend), and leave the capacity behind
//! for the next job.
//!
//! Correctness does not depend on arena contents — every producer fully
//! overwrites the region it later reads, which the poisoned-arena
//! property test in `tests/pool_equivalence.rs` pins by interleaving
//! garbage batches with golden ones. Checkout warmth is reported to
//! [`srtd_runtime::pool::note_scratch`] so the pool's scratch hit rate
//! is observable.

use crate::Complex;
use std::cell::RefCell;

/// Recycled buffers for one thread's spectral jobs.
pub(crate) struct SpectralScratch {
    /// Packed complex FFT buffer.
    pub buf: Vec<Complex>,
    /// Magnitude storage for the first stream of a job.
    pub mag_a: Vec<f64>,
    /// Magnitude storage for the second stream of a pair job.
    pub mag_b: Vec<f64>,
    /// Whether this arena has served a job before (reuse accounting).
    warm: bool,
}

thread_local! {
    static SCRATCH: RefCell<SpectralScratch> = const {
        RefCell::new(SpectralScratch {
            buf: Vec::new(),
            mag_a: Vec::new(),
            mag_b: Vec::new(),
            warm: false,
        })
    };
}

/// Checks the current thread's arena out for the duration of `f`.
///
/// Not re-entrant: `f` must not call `with_scratch` again (the spectral
/// jobs never nest).
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut SpectralScratch) -> R) -> R {
    SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        srtd_runtime::pool::note_scratch(scratch.warm);
        scratch.warm = true;
        f(&mut scratch)
    })
}
