//! Principal component analysis over fingerprint feature vectors.

use crate::linalg::{jacobi_eigen, Matrix};

/// A fitted PCA model.
///
/// The paper projects fingerprint feature vectors onto the first two
/// principal components to visualize device separability (Figs. 2 and 8);
/// [`Pca::project`] reproduces exactly that projection.
///
/// # Examples
///
/// ```
/// use srtd_cluster::Pca;
///
/// // Points on a line: one dominant component.
/// let pts: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
/// let pca = Pca::fit(&pts, 2);
/// let ratio = pca.explained_variance_ratio();
/// assert!(ratio[0] > 0.99);
/// ```
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    components: Vec<Vec<f64>>,
    eigenvalues: Vec<f64>,
    total_variance: f64,
}

impl Pca {
    /// Fits a PCA with up to `n_components` components.
    ///
    /// Centers the data, forms the covariance matrix and eigendecomposes it
    /// with the Jacobi solver. The number of returned components is clamped
    /// to the data dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, rows have inconsistent lengths, or
    /// `n_components == 0`.
    pub fn fit(points: &[Vec<f64>], n_components: usize) -> Self {
        assert!(!points.is_empty(), "cannot fit PCA on an empty point set");
        assert!(n_components > 0, "need at least one component");
        let _span = srtd_runtime::obs::span("cluster.pca.fit");
        let dim = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == dim),
            "points must share one dimensionality"
        );
        let n = points.len() as f64;
        let mean: Vec<f64> = (0..dim)
            .map(|j| points.iter().map(|p| p[j]).sum::<f64>() / n)
            .collect();
        let mut cov = Matrix::zeros(dim, dim);
        for p in points {
            for i in 0..dim {
                let di = p[i] - mean[i];
                for j in i..dim {
                    let dj = p[j] - mean[j];
                    let v = cov.get(i, j) + di * dj / n;
                    cov.set(i, j, v);
                    if i != j {
                        cov.set(j, i, v);
                    }
                }
            }
        }
        let eig = jacobi_eigen(&cov);
        let keep = n_components.min(dim);
        let total_variance: f64 = eig.values.iter().map(|&v| v.max(0.0)).sum();
        Self {
            mean,
            components: eig.vectors.into_iter().take(keep).collect(),
            eigenvalues: eig.values.into_iter().take(keep).collect(),
            total_variance,
        }
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }

    /// The retained principal axes (unit vectors, rows).
    pub fn components(&self) -> &[Vec<f64>] {
        &self.components
    }

    /// Variance captured by each retained component.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Fraction of total variance captured by each retained component.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        if self.total_variance <= 0.0 {
            return vec![0.0; self.eigenvalues.len()];
        }
        self.eigenvalues
            .iter()
            .map(|&v| (v.max(0.0) / self.total_variance).clamp(0.0, 1.0))
            .collect()
    }

    /// Projects one point into the component space.
    ///
    /// # Panics
    ///
    /// Panics if `point.len()` differs from the training dimensionality.
    pub fn project(&self, point: &[f64]) -> Vec<f64> {
        assert_eq!(point.len(), self.mean.len(), "dimension mismatch");
        self.components
            .iter()
            .map(|axis| {
                axis.iter()
                    .zip(point.iter().zip(&self.mean))
                    .map(|(a, (x, m))| a * (x - m))
                    .sum()
            })
            .collect()
    }

    /// Projects a batch of points.
    pub fn project_all(&self, points: &[Vec<f64>]) -> Vec<Vec<f64>> {
        points.iter().map(|p| self.project(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert};

    #[test]
    fn line_data_has_single_dominant_component() {
        let pts: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, 3.0 * i as f64 + 1.0])
            .collect();
        let pca = Pca::fit(&pts, 2);
        let ratio = pca.explained_variance_ratio();
        assert!(ratio[0] > 0.999);
        // First axis is parallel to (1, 3)/√10.
        let axis = &pca.components()[0];
        let expected = [1.0 / 10f64.sqrt(), 3.0 / 10f64.sqrt()];
        let dot: f64 = axis.iter().zip(&expected).map(|(a, b)| a * b).sum();
        assert!((dot.abs() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn projection_of_mean_is_origin() {
        let pts = vec![vec![1.0, 2.0], vec![3.0, 6.0], vec![5.0, 4.0]];
        let pca = Pca::fit(&pts, 2);
        let mean = [3.0, 4.0];
        let proj = pca.project(&mean);
        assert!(proj.iter().all(|v| v.abs() < 1e-10));
    }

    #[test]
    fn components_clamped_to_dimension() {
        let pts = vec![vec![1.0], vec![2.0], vec![3.0]];
        let pca = Pca::fit(&pts, 5);
        assert_eq!(pca.n_components(), 1);
    }

    #[test]
    fn constant_data_yields_zero_ratios() {
        let pts = vec![vec![2.0, 2.0]; 4];
        let pca = Pca::fit(&pts, 2);
        let ratio = pca.explained_variance_ratio();
        assert!(ratio.iter().all(|&r| r == 0.0));
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn empty_points_panic() {
        Pca::fit(&[], 2);
    }

    /// Projection preserves pairwise distances when all components are
    /// kept (PCA is a rotation).
    #[test]
    fn full_projection_is_isometric() {
        prop::check(
            |rng| {
                (0..12)
                    .map(|_| (0..3).map(|_| rng.gen_range(-5.0..5.0) * 2.0).collect())
                    .collect::<Vec<Vec<f64>>>()
            },
            |pts| {
                let pca = Pca::fit(pts, 3);
                let proj = pca.project_all(pts);
                for i in 0..pts.len() {
                    for j in 0..pts.len() {
                        let d0 = crate::squared_distance(&pts[i], &pts[j]);
                        let d1 = crate::squared_distance(&proj[i], &proj[j]);
                        prop_assert!((d0 - d1).abs() < 1e-6 * d0.max(1.0));
                    }
                }
                Ok(())
            },
        );
    }

    /// Explained variance ratios are a sub-probability vector sorted
    /// descending.
    #[test]
    fn ratios_sorted_and_bounded() {
        prop::check(
            |rng| {
                (0..10)
                    .map(|_| (0..4).map(|_| rng.gen_range(-1.5..1.5)).collect())
                    .collect::<Vec<Vec<f64>>>()
            },
            |pts| {
                let pca = Pca::fit(pts, 4);
                let ratio = pca.explained_variance_ratio();
                let sum: f64 = ratio.iter().sum();
                prop_assert!(sum <= 1.0 + 1e-9);
                for w in ratio.windows(2) {
                    prop_assert!(w[0] + 1e-9 >= w[1]);
                }
                Ok(())
            },
        );
    }
}
