//! Walking routes and visit timetables.

use crate::poi::PoiMap;
use srtd_fingerprint::noise::normal;
use srtd_runtime::json::{Json, ToJson};
use srtd_runtime::rng::Rng;

/// One POI visit on a walk: the task performed and when the walker arrived.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Visit {
    /// Task/POI index.
    pub task: usize,
    /// Arrival timestamp in seconds from campaign start.
    pub arrival: f64,
}

/// A walking trace: an ordered sequence of POI visits with arrival times.
///
/// # Examples
///
/// ```
/// use srtd_runtime::rng::SeedableRng;
/// use srtd_sensing::{mobility::Walk, PoiMap};
///
/// let map = PoiMap::campus(10, 1);
/// let mut rng = srtd_runtime::rng::StdRng::seed_from_u64(2);
/// let walk = Walk::plan(&map, &[3, 7, 1], 0.0, 1.3, &mut rng);
/// assert_eq!(walk.visits().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Walk {
    visits: Vec<Visit>,
}

impl Walk {
    /// Mean dwell time at a POI while performing the measurement (s).
    pub const DWELL_MEAN_S: f64 = 45.0;
    /// Spread of the dwell time (s).
    pub const DWELL_STD_S: f64 = 12.0;

    /// Plans a walk visiting `tasks` in nearest-neighbor order.
    ///
    /// The walker starts at the first chosen task's POI at `start_time`,
    /// then repeatedly heads to the nearest unvisited POI at `speed_mps`,
    /// dwelling at each stop to take the measurement. Nearest-neighbor
    /// ordering mimics how a volunteer strings errands together; the exact
    /// order only matters in that *one physical walk has one order* — the
    /// property AG-TR exploits.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty, contains an out-of-range id, or
    /// `speed_mps` is not positive.
    pub fn plan<R: Rng + ?Sized>(
        map: &PoiMap,
        tasks: &[usize],
        start_time: f64,
        speed_mps: f64,
        rng: &mut R,
    ) -> Self {
        assert!(!tasks.is_empty(), "a walk must visit at least one POI");
        assert!(
            tasks.iter().all(|&t| t < map.len()),
            "task id out of range for the POI map"
        );
        assert!(speed_mps > 0.0, "walking speed must be positive");
        let mut remaining: Vec<usize> = tasks.to_vec();
        remaining.sort_unstable();
        remaining.dedup();
        let mut t = start_time;
        let mut visits = Vec::with_capacity(remaining.len());
        // Start at the first listed task (the volunteer's entry point).
        let first = tasks[0];
        let mut current = first;
        remaining.retain(|&x| x != first);
        visits.push(Visit {
            task: current,
            arrival: t,
        });
        t += dwell(rng);
        while !remaining.is_empty() {
            let (idx, &next) = remaining
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    map.distance(current, *a.1)
                        .total_cmp(&map.distance(current, *b.1))
                })
                .expect("remaining not empty");
            remaining.swap_remove(idx);
            t += map.distance(current, next) / speed_mps;
            current = next;
            visits.push(Visit {
                task: current,
                arrival: t,
            });
            t += dwell(rng);
        }
        Self { visits }
    }

    /// Plans a walk visiting `tasks` exactly in the order given
    /// (duplicates after the first occurrence are dropped).
    ///
    /// Legitimate volunteers string POIs together "according to their own
    /// preference" (§V-A), so their visit orders differ even when their
    /// task sets coincide — the variation AG-TR uses to tell two fully
    /// active users apart.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Walk::plan`].
    pub fn plan_in_order<R: Rng + ?Sized>(
        map: &PoiMap,
        tasks: &[usize],
        start_time: f64,
        speed_mps: f64,
        rng: &mut R,
    ) -> Self {
        assert!(!tasks.is_empty(), "a walk must visit at least one POI");
        assert!(
            tasks.iter().all(|&t| t < map.len()),
            "task id out of range for the POI map"
        );
        assert!(speed_mps > 0.0, "walking speed must be positive");
        let mut seen = vec![false; map.len()];
        let mut t = start_time;
        let mut visits: Vec<Visit> = Vec::with_capacity(tasks.len());
        for &task in tasks {
            if seen[task] {
                continue;
            }
            seen[task] = true;
            if let Some(prev) = visits.last() {
                t += dwell(rng) + map.distance(prev.task, task) / speed_mps;
            }
            visits.push(Visit { task, arrival: t });
        }
        Self { visits }
    }

    /// The visits in travel order.
    pub fn visits(&self) -> &[Visit] {
        &self.visits
    }

    /// Total duration from first arrival to last arrival (s).
    pub fn duration(&self) -> f64 {
        match (self.visits.first(), self.visits.last()) {
            (Some(a), Some(b)) => b.arrival - a.arrival,
            _ => 0.0,
        }
    }
}

fn dwell<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    normal(rng, Walk::DWELL_MEAN_S, Walk::DWELL_STD_S).clamp(10.0, 120.0)
}

impl ToJson for Visit {
    fn to_json(&self) -> Json {
        Json::obj([
            ("task", self.task.to_json()),
            ("arrival", self.arrival.to_json()),
        ])
    }
}

impl ToJson for Walk {
    fn to_json(&self) -> Json {
        Json::obj([("visits", self.visits.to_json())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::SeedableRng;
    use srtd_runtime::rng::StdRng;

    #[test]
    fn visits_all_requested_tasks_once() {
        let map = PoiMap::campus(10, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let walk = Walk::plan(&map, &[2, 5, 8, 5], 100.0, 1.4, &mut rng);
        let mut tasks: Vec<usize> = walk.visits().iter().map(|v| v.task).collect();
        tasks.sort_unstable();
        assert_eq!(tasks, vec![2, 5, 8]);
    }

    #[test]
    fn timestamps_strictly_increase() {
        let map = PoiMap::campus(10, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let walk = Walk::plan(&map, &[0, 9, 4, 7, 2], 0.0, 1.2, &mut rng);
        for w in walk.visits().windows(2) {
            assert!(w[1].arrival > w[0].arrival);
        }
    }

    #[test]
    fn starts_at_start_time_and_first_task() {
        let map = PoiMap::campus(5, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let walk = Walk::plan(&map, &[3, 1], 250.0, 1.0, &mut rng);
        assert_eq!(walk.visits()[0].task, 3);
        assert_eq!(walk.visits()[0].arrival, 250.0);
    }

    #[test]
    fn walking_takes_realistic_time() {
        let map = PoiMap::campus(10, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let walk = Walk::plan(&map, &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9], 0.0, 1.4, &mut rng);
        // 10 POIs over a 400×300 m campus: minutes, not hours or seconds.
        assert!(walk.duration() > 300.0, "{}", walk.duration());
        assert!(walk.duration() < 7200.0, "{}", walk.duration());
    }

    #[test]
    #[should_panic(expected = "at least one POI")]
    fn empty_task_list_panics() {
        let map = PoiMap::campus(3, 5);
        let mut rng = StdRng::seed_from_u64(5);
        Walk::plan(&map, &[], 0.0, 1.0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_task_panics() {
        let map = PoiMap::campus(3, 6);
        let mut rng = StdRng::seed_from_u64(6);
        Walk::plan(&map, &[5], 0.0, 1.0, &mut rng);
    }
}
