//! Shared moment and summary statistics.
//!
//! These helpers back both the temporal features (moments of the raw
//! signal) and the spectral shape features (moments of the magnitude
//! distribution over frequency). All functions define sensible values for
//! degenerate inputs (empty or constant signals) so that fingerprinting
//! never produces NaN feature vectors.

/// One-shot moment accumulator: everything the 9 temporal Table-II
/// features need, gathered in **two passes** over the signal instead of
/// the ~12 the free-function helpers take together.
///
/// Pass 1 accumulates sum, sum of squares, min, max, zero crossings and
/// the non-negative count; pass 2 accumulates the centered second/third/
/// fourth power sums around the pass-1 mean. Every quantity keeps its own
/// accumulator and is added strictly left to right, with the exact
/// arithmetic expressions of the free functions ([`mean`], [`variance`],
/// [`skewness`], [`kurtosis`], [`rms`]), so the accessors are
/// bit-identical to calling those helpers separately — the fusion changes
/// pass count, never bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    len: usize,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
    zero_crossings: usize,
    non_negative: usize,
    /// Centered power sums `Σ (x − mean)^p` for `p = 2, 3, 4`.
    m2: f64,
    m3: f64,
    m4: f64,
}

impl Moments {
    /// Accumulates the moments of `xs` in two left-to-right passes.
    pub fn of(xs: &[f64]) -> Self {
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut zero_crossings = 0usize;
        let mut non_negative = 0usize;
        let mut prev_non_neg = false;
        for (i, &x) in xs.iter().enumerate() {
            sum += x;
            sum_sq += x * x;
            max = f64::max(max, x);
            min = f64::min(min, x);
            let nn = x >= 0.0;
            if nn {
                non_negative += 1;
            }
            if i > 0 && nn != prev_non_neg {
                zero_crossings += 1;
            }
            prev_non_neg = nn;
        }
        let mean = if xs.is_empty() {
            0.0
        } else {
            sum / xs.len() as f64
        };
        let mut m2 = 0.0;
        let mut m3 = 0.0;
        let mut m4 = 0.0;
        for &x in xs {
            let d = x - mean;
            m2 += d * d;
            m3 += d.powi(3);
            m4 += d.powi(4);
        }
        Self {
            len: xs.len(),
            sum,
            sum_sq,
            min,
            max,
            zero_crossings,
            non_negative,
            m2,
            m3,
            m4,
        }
    }

    /// Number of samples accumulated.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no samples were accumulated.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arithmetic mean; `0.0` when empty. Bit-identical to [`mean`].
    pub fn mean(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.sum / self.len as f64
    }

    /// Population variance; `0.0` for fewer than 2 samples. Bit-identical
    /// to [`variance`].
    pub fn variance(&self) -> f64 {
        if self.len < 2 {
            return 0.0;
        }
        self.m2 / self.len as f64
    }

    /// Population standard deviation. Bit-identical to [`std_dev`].
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample skewness; `0.0` for constant or too-short signals.
    /// Bit-identical to [`skewness`].
    pub fn skewness(&self) -> f64 {
        let sd = self.std_dev();
        let m = self.mean();
        if self.len < 2 || effectively_constant(sd, m) {
            return 0.0;
        }
        (self.m3 / self.len as f64) / sd.powi(3)
    }

    /// Kurtosis (not excess); `3.0` for constant or too-short signals.
    /// Bit-identical to [`kurtosis`].
    pub fn kurtosis(&self) -> f64 {
        let sd = self.std_dev();
        let m = self.mean();
        if self.len < 2 || effectively_constant(sd, m) {
            return 3.0;
        }
        (self.m4 / self.len as f64) / sd.powi(4)
    }

    /// Root mean square; `0.0` when empty. Bit-identical to [`rms`].
    pub fn rms(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        (self.sum_sq / self.len as f64).sqrt()
    }

    /// Maximum sample; `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.max
    }

    /// Minimum sample; `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.min
    }

    /// Sign changes per sample transition (zeros count as non-negative);
    /// `0.0` for fewer than 2 samples. Bit-identical to
    /// [`crate::temporal::zero_crossing_rate`].
    pub fn zero_crossing_rate(&self) -> f64 {
        if self.len < 2 {
            return 0.0;
        }
        self.zero_crossings as f64 / (self.len - 1) as f64
    }

    /// Fraction of samples `>= 0`; `0.0` when empty. Bit-identical to
    /// [`crate::temporal::non_negative_fraction`].
    pub fn non_negative_fraction(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.non_negative as f64 / self.len as f64
    }
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; `0.0` for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; `0.0` for slices shorter than 2.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Returns `true` when the spread is pure floating-point noise relative to
/// the signal magnitude, so standardized moments are meaningless.
fn effectively_constant(sd: f64, m: f64) -> bool {
    sd <= 1e3 * f64::EPSILON * m.abs().max(1.0)
}

/// Sample skewness (third standardized moment); `0.0` for constant or
/// too-short signals.
pub fn skewness(xs: &[f64]) -> f64 {
    let sd = std_dev(xs);
    let m = mean(xs);
    if xs.len() < 2 || effectively_constant(sd, m) {
        return 0.0;
    }
    let m3 = xs.iter().map(|x| (x - m).powi(3)).sum::<f64>() / xs.len() as f64;
    m3 / sd.powi(3)
}

/// Kurtosis (fourth standardized moment, *not* excess); `3.0` (the normal
/// value) for constant or too-short signals so that flat streams do not
/// register as spiky.
pub fn kurtosis(xs: &[f64]) -> f64 {
    let sd = std_dev(xs);
    let m = mean(xs);
    if xs.len() < 2 || effectively_constant(sd, m) {
        return 3.0;
    }
    let m4 = xs.iter().map(|x| (x - m).powi(4)).sum::<f64>() / xs.len() as f64;
    m4 / sd.powi(4)
}

/// Root mean square; `0.0` for an empty slice.
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Weighted mean of `values` with non-negative `weights`.
///
/// Returns `0.0` when the weights sum to zero.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(
        values.len(),
        weights.len(),
        "values/weights length mismatch"
    );
    let wsum: f64 = weights.iter().sum();
    if wsum == 0.0 {
        return 0.0;
    }
    values.iter().zip(weights).map(|(v, w)| v * w).sum::<f64>() / wsum
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert};

    #[test]
    fn mean_and_variance_of_known_data() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(skewness(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(kurtosis(&[5.0, 5.0, 5.0]), 3.0);
        assert_eq!(rms(&[]), 0.0);
    }

    #[test]
    fn symmetric_data_has_zero_skew() {
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&xs).abs() < 1e-12);
    }

    #[test]
    fn right_tail_gives_positive_skew() {
        let xs = [0.0, 0.0, 0.0, 0.0, 10.0];
        assert!(skewness(&xs) > 0.0);
    }

    #[test]
    fn weighted_mean_matches_plain_mean_for_equal_weights() {
        let xs = [1.0, 2.0, 3.0];
        assert!((weighted_mean(&xs, &[1.0, 1.0, 1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(weighted_mean(&xs, &[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn weighted_mean_pulls_toward_heavy_point() {
        let v = weighted_mean(&[0.0, 10.0], &[1.0, 3.0]);
        assert!((v - 7.5).abs() < 1e-12);
    }

    #[test]
    fn rms_ge_abs_mean() {
        prop::check(
            |rng| prop::vec_with(rng, 1..100, |r| r.gen_range(-1e3f64..1e3)),
            |xs| {
                prop_assert!(rms(xs) + 1e-9 >= mean(xs).abs());
                Ok(())
            },
        );
    }

    #[test]
    fn variance_shift_invariant() {
        prop::check(
            |rng| {
                (
                    prop::vec_with(rng, 2..100, |r| r.gen_range(-1e3f64..1e3)),
                    rng.gen_range(-1e3f64..1e3),
                )
            },
            |(xs, shift)| {
                let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
                prop_assert!((variance(xs) - variance(&shifted)).abs() < 1e-6);
                Ok(())
            },
        );
    }

    #[test]
    fn kurtosis_at_least_one() {
        prop::check(
            |rng| prop::vec_with(rng, 2..100, |r| r.gen_range(-1e3f64..1e3)),
            |xs| {
                // For any distribution, kurtosis >= 1 (>= skewness² + 1).
                prop_assert!(kurtosis(xs) >= 1.0 - 1e-9);
                Ok(())
            },
        );
    }

    /// The fused accumulator is not "close to" the free functions — it is
    /// the same arithmetic in the same order, so every accessor must be
    /// bit-identical, including on degenerate inputs.
    #[test]
    fn moments_bit_identical_to_free_functions() {
        prop::check(
            |rng| prop::vec_with(rng, 0..200, |r| r.gen_range(-1e4f64..1e4)),
            |xs| {
                let m = Moments::of(xs);
                prop_assert!(m.mean().to_bits() == mean(xs).to_bits());
                prop_assert!(m.variance().to_bits() == variance(xs).to_bits());
                prop_assert!(m.std_dev().to_bits() == std_dev(xs).to_bits());
                prop_assert!(m.skewness().to_bits() == skewness(xs).to_bits());
                prop_assert!(m.kurtosis().to_bits() == kurtosis(xs).to_bits());
                prop_assert!(m.rms().to_bits() == rms(xs).to_bits());
                Ok(())
            },
        );
    }

    #[test]
    fn moments_degenerate_inputs() {
        let empty = Moments::of(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.rms(), 0.0);
        assert_eq!(empty.max(), 0.0);
        assert_eq!(empty.min(), 0.0);
        assert_eq!(empty.zero_crossing_rate(), 0.0);
        assert_eq!(empty.non_negative_fraction(), 0.0);
        let constant = Moments::of(&[5.0, 5.0, 5.0]);
        assert_eq!(constant.skewness(), 0.0);
        assert_eq!(constant.kurtosis(), 3.0);
        assert_eq!(constant.zero_crossing_rate(), 0.0);
        assert_eq!(constant.non_negative_fraction(), 1.0);
        let single = Moments::of(&[-2.5]);
        assert_eq!(single.len(), 1);
        assert_eq!(single.min(), -2.5);
        assert_eq!(single.max(), -2.5);
        assert_eq!(single.variance(), 0.0);
    }

    #[test]
    fn moments_extrema_and_counts() {
        let m = Moments::of(&[1.0, -1.0, 0.0, 2.0]);
        assert_eq!(m.max(), 2.0);
        assert_eq!(m.min(), -1.0);
        // Transitions: +→−, −→0(non-negative), 0→+ stays: 2 crossings.
        assert!((m.zero_crossing_rate() - 2.0 / 3.0).abs() < 1e-15);
        assert_eq!(m.non_negative_fraction(), 0.75);
    }

    #[test]
    fn weighted_mean_in_hull() {
        prop::check(
            |rng| {
                prop::vec_with(rng, 1..50, |r| {
                    (r.gen_range(-1e3f64..1e3), r.gen_range(0.0f64..10.0))
                })
            },
            |pts| {
                let values: Vec<f64> = pts.iter().map(|p| p.0).collect();
                let weights: Vec<f64> = pts.iter().map(|p| p.1).collect();
                if weights.iter().sum::<f64>() <= 0.0 {
                    return Ok(()); // degenerate draw, nothing to check
                }
                let wm = weighted_mean(&values, &weights);
                let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(wm >= lo - 1e-9 && wm <= hi + 1e-9);
                Ok(())
            },
        );
    }
}
