//! RAII wall-clock spans.

use super::internal;
use std::time::Instant;

/// A running span; records its elapsed wall-clock time under its name
/// when dropped. Created by [`super::span`].
///
/// Guards nest naturally (each records independently) and may be dropped
/// from any thread — worker threads inside `parallel_map` report into the
/// same registry as the driver.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    name: &'static str,
    /// `None` while collection is disabled: starting a span then costs no
    /// clock read and dropping it is free.
    start: Option<Instant>,
}

impl Span {
    pub(super) fn start(name: &'static str) -> Self {
        Self {
            name,
            start: super::enabled().then(Instant::now),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            internal::with(|s| s.spans.entry(self.name).or_default().record(elapsed_ns));
        }
    }
}
