//! End-to-end tests of the `srtd` binary: real process, real files.

use std::path::PathBuf;
use std::process::{Command, Output};

fn srtd(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_srtd"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srtd-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn help_prints_usage() {
    let out = srtd(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("simulate"));
    assert!(stdout(&out).contains("evaluate"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = srtd(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_flag_value_fails() {
    let out = srtd(&["evaluate", "--seed"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--seed needs a value"));
}

#[test]
fn simulate_then_evaluate_round_trips() {
    let dir = temp_dir("roundtrip");
    let dir_str = dir.to_str().expect("utf-8 temp path");
    let out = srtd(&["simulate", "--seed", "7", "--out", dir_str]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    for file in [
        "reports.csv",
        "fingerprints.csv",
        "ground_truth.csv",
        "owners.csv",
    ] {
        assert!(dir.join(file).exists(), "{file} missing");
    }

    // Evaluating from the CSV export must match evaluating the same seed
    // in-process (the CSV round trip is lossless for this pipeline).
    let from_csv = srtd(&["evaluate", "--from", dir_str]);
    assert!(from_csv.status.success());
    let generated = srtd(&["evaluate", "--seed", "7"]);
    assert!(generated.status.success());
    let grab = |text: &str, method: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(method))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .unwrap_or(f64::NAN)
    };
    let csv_text = stdout(&from_csv);
    let gen_text = stdout(&generated);
    for method in ["CRH", "TD-FP", "TD-TS", "TD-TR"] {
        let a = grab(&csv_text, method);
        let b = grab(&gen_text, method);
        assert!((a - b).abs() < 0.05, "{method}: CSV {a} vs generated {b}");
    }
    // TD-TR beats CRH on the default attacked campaign.
    assert!(grab(&csv_text, "TD-TR") < grab(&csv_text, "CRH"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn group_reports_perfect_ari_on_seed_7() {
    let out = srtd(&["group", "--seed", "7", "--method", "ag-tr"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("ARI vs. true owners: 1.000"), "{text}");
    assert!(text.contains("(* = Sybil account)"));
}

#[test]
fn group_rejects_unknown_method() {
    let out = srtd(&["group", "--method", "ag-nope"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown method"));
}

#[test]
fn evaluate_honors_activeness_flag() {
    let out = srtd(&["evaluate", "--seeds", "2", "--activeness", "0.5,0.5"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("avg over 2 seed(s)"));
    let bad = srtd(&["evaluate", "--activeness", "nonsense"]);
    assert!(!bad.status.success());
}

#[test]
fn obs_flag_prints_report_and_exports_json() {
    let json_path = std::env::temp_dir().join(format!("srtd-cli-obs-{}.json", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_srtd"))
        .args([
            "evaluate", "--seed", "0", "--legit", "4", "--tasks", "4", "--obs",
        ])
        .env_remove("SRTD_OBS")
        .env("SRTD_OBS_JSON", &json_path)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    // The human table follows the MAE output and covers the pipeline.
    for needle in ["spans (wall clock)", "counters", "framework.discover"] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
    // The JSON export exists and carries the report sections, including
    // the retained telemetry windows (evaluate opens one per seed).
    let json = std::fs::read_to_string(&json_path).expect("SRTD_OBS_JSON written");
    for needle in [
        "\"spans\"",
        "\"counters\"",
        "framework.iteration",
        "\"history\"",
        "\"label\":\"seed-0\"",
    ] {
        assert!(json.contains(needle), "missing `{needle}` in export");
    }
    let _ = std::fs::remove_file(&json_path);
}

#[test]
fn obs_disabled_runs_print_no_report() {
    let out = Command::new(env!("CARGO_BIN_EXE_srtd"))
        .args(["evaluate", "--seed", "0", "--legit", "4", "--tasks", "4"])
        .env_remove("SRTD_OBS")
        .env_remove("SRTD_OBS_JSON")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(!text.contains("spans (wall clock)"), "{text}");
}
