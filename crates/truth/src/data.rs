//! The account × task report matrix.

use srtd_runtime::json::{Json, ToJson};
use std::collections::HashSet;
use std::sync::OnceLock;

/// One sensing report: account `account` claims `value` for task `task`
/// at time `timestamp` (seconds from the campaign start).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Report {
    /// Reporting account index.
    pub account: usize,
    /// Task index.
    pub task: usize,
    /// Claimed numeric value (e.g. Wi-Fi RSSI in dBm).
    pub value: f64,
    /// Submission timestamp in seconds.
    pub timestamp: f64,
}

/// A compressed-sparse-row view over the flat report list: `offsets` has
/// one entry per bucket plus a sentinel, `indices` holds report indices
/// grouped by bucket in insertion order.
///
/// Built in one counting-sort pass (O(reports + buckets)) and cached
/// lazily; the campaign's read paths hand out `&[usize]` slices into it,
/// so per-task and per-account iteration never allocates.
#[derive(Debug, Clone, Default)]
struct CsrIndex {
    offsets: Vec<usize>,
    indices: Vec<usize>,
}

impl CsrIndex {
    fn build(buckets: usize, keys: impl Iterator<Item = usize> + Clone) -> Self {
        let mut offsets = vec![0usize; buckets + 1];
        for key in keys.clone() {
            offsets[key + 1] += 1;
        }
        for b in 0..buckets {
            offsets[b + 1] += offsets[b];
        }
        let mut cursor = offsets.clone();
        let mut indices = vec![0usize; offsets[buckets]];
        for (report, key) in keys.enumerate() {
            indices[cursor[key]] = report;
            cursor[key] += 1;
        }
        Self { offsets, indices }
    }

    fn slice(&self, bucket: usize) -> &[usize] {
        &self.indices[self.offsets[bucket]..self.offsets[bucket + 1]]
    }
}

/// All reports of a sensing campaign, indexed both by account and by task.
///
/// Matches the paper's model: `m` tasks, accounts `0..n`, and at most one
/// report per (account, task) pair ("each account is allowed to submit at
/// most one data for one task").
///
/// Reports live in one flat insertion-ordered `Vec`; the per-task and
/// per-account views are flat CSR offset+index arrays built lazily on
/// first read and invalidated on mutation, so the hot read paths
/// ([`SensingData::task_reports`], [`SensingData::account_reports`]) are
/// allocation-free index-slice walks.
///
/// # Examples
///
/// ```
/// use srtd_truth::SensingData;
///
/// let mut data = SensingData::new(2);
/// data.add_report(0, 0, -80.0, 12.0);
/// data.add_report(0, 1, -75.0, 60.0);
/// data.add_report(1, 1, -74.0, 30.0);
/// assert_eq!(data.num_accounts(), 2);
/// assert_eq!(data.tasks_of(0), &[0, 1]);
/// assert_eq!(data.task_reports(1).len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SensingData {
    num_tasks: usize,
    num_accounts: usize,
    reports: Vec<Report>,
    /// Duplicate-report guard: one entry per (account, task) pair. Makes
    /// `add_report` O(1) instead of O(|T_i|) per insertion.
    seen: HashSet<(usize, usize)>,
    by_task: OnceLock<CsrIndex>,
    by_account: OnceLock<CsrIndex>,
}

impl PartialEq for SensingData {
    /// Compares the semantic content — task count, account count and the
    /// report list. The CSR indexes are derived caches and excluded.
    fn eq(&self, other: &Self) -> bool {
        self.num_tasks == other.num_tasks
            && self.num_accounts == other.num_accounts
            && self.reports == other.reports
    }
}

impl SensingData {
    /// Creates an empty campaign with `num_tasks` tasks.
    pub fn new(num_tasks: usize) -> Self {
        Self {
            num_tasks,
            ..Self::default()
        }
    }

    /// Number of tasks `m`.
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// Number of accounts (highest account index seen + 1).
    pub fn num_accounts(&self) -> usize {
        self.num_accounts
    }

    /// Total number of reports.
    pub fn num_reports(&self) -> usize {
        self.reports.len()
    }

    /// Returns `true` if no report has been added.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Ensures the campaign tracks at least `n` accounts, adding trailing
    /// report-less accounts if needed.
    ///
    /// Filtering operations (e.g. budgeted selection) may drop every
    /// report of the highest-indexed accounts; this keeps account-indexed
    /// structures (fingerprints, owner labels) aligned.
    pub fn reserve_accounts(&mut self, n: usize) {
        if n > self.num_accounts {
            self.num_accounts = n;
            self.by_account.take();
        }
    }

    /// Adds a report.
    ///
    /// # Panics
    ///
    /// Panics if `task >= num_tasks`, if the value or timestamp is not
    /// finite, or if the account already reported this task (the paper's
    /// one-report-per-task rule).
    pub fn add_report(&mut self, account: usize, task: usize, value: f64, timestamp: f64) {
        assert!(
            task < self.num_tasks,
            "task {task} out of range for {} tasks",
            self.num_tasks
        );
        assert!(value.is_finite(), "report value must be finite");
        assert!(timestamp.is_finite(), "timestamp must be finite");
        assert!(
            self.seen.insert((account, task)),
            "account {account} already reported task {task}"
        );
        self.num_accounts = self.num_accounts.max(account + 1);
        self.reports.push(Report {
            account,
            task,
            value,
            timestamp,
        });
        self.by_task.take();
        self.by_account.take();
    }

    fn task_csr(&self) -> &CsrIndex {
        self.by_task
            .get_or_init(|| CsrIndex::build(self.num_tasks, self.reports.iter().map(|r| r.task)))
    }

    fn account_csr(&self) -> &CsrIndex {
        self.by_account.get_or_init(|| {
            CsrIndex::build(self.num_accounts, self.reports.iter().map(|r| r.account))
        })
    }

    /// All reports in insertion order.
    pub fn reports(&self) -> &[Report] {
        &self.reports
    }

    /// The reports account `account` submitted, in insertion order.
    ///
    /// Accounts that never reported return an empty iterator.
    pub fn account_reports(
        &self,
        account: usize,
    ) -> impl ExactSizeIterator<Item = &Report> + Clone {
        let indices = if account < self.num_accounts {
            self.account_csr().slice(account)
        } else {
            &[]
        };
        indices.iter().map(|&i| &self.reports[i])
    }

    /// The sorted task indices account `account` accomplished (its `T_i`).
    pub fn tasks_of(&self, account: usize) -> Vec<usize> {
        let mut tasks: Vec<usize> = self.account_reports(account).map(|r| r.task).collect();
        tasks.sort_unstable();
        tasks
    }

    /// Indices (into [`SensingData::reports`]) of the reports submitted
    /// for `task`, in insertion order — a borrowed slice of the CSR
    /// index, no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `task >= num_tasks`.
    pub fn task_report_indices(&self, task: usize) -> &[usize] {
        assert!(task < self.num_tasks, "task {task} out of range");
        self.task_csr().slice(task)
    }

    /// The reports submitted for `task` (the paper's `U_j` with values),
    /// as a non-allocating iterator over the CSR index.
    ///
    /// # Panics
    ///
    /// Panics if `task >= num_tasks`.
    pub fn task_reports(&self, task: usize) -> impl ExactSizeIterator<Item = &Report> + Clone {
        self.task_report_indices(task)
            .iter()
            .map(|&i| &self.reports[i])
    }

    /// The reports submitted for `task`, collected into a vector.
    ///
    /// Allocating compatibility shim over [`SensingData::task_reports`] —
    /// hot paths should iterate the CSR slice instead.
    ///
    /// # Panics
    ///
    /// Panics if `task >= num_tasks`.
    pub fn reports_for_task(&self, task: usize) -> Vec<&Report> {
        self.task_reports(task).collect()
    }

    /// The account's reports ordered by timestamp — its trajectory, as
    /// AG-TR consumes it.
    pub fn trajectory_of(&self, account: usize) -> Vec<Report> {
        let mut reports: Vec<Report> = self.account_reports(account).copied().collect();
        reports.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));
        reports
    }

    /// Per-task mean of claimed values in one flat pass over the report
    /// list; `None` for tasks with no reports.
    ///
    /// The summation order per task matches per-task iteration (additions
    /// happen in increasing report-index order either way), so the means
    /// are bit-identical to a grouped computation.
    pub fn task_means(&self) -> Vec<Option<f64>> {
        let mut sums = vec![0.0f64; self.num_tasks];
        let mut counts = vec![0usize; self.num_tasks];
        for r in &self.reports {
            sums[r.task] += r.value;
            counts[r.task] += 1;
        }
        (0..self.num_tasks)
            .map(|t| (counts[t] > 0).then(|| sums[t] / counts[t] as f64))
            .collect()
    }

    /// Per-task standard deviation of claimed values (used by CRH's loss
    /// normalization); `None` for tasks with no reports.
    ///
    /// Two flat passes over the report list — no per-task value buffers.
    pub fn task_value_std(&self) -> Vec<Option<f64>> {
        let means = self.task_means();
        let mut sq = vec![0.0f64; self.num_tasks];
        let mut counts = vec![0usize; self.num_tasks];
        for r in &self.reports {
            let mean = means[r.task].expect("reported task has a mean");
            sq[r.task] += (r.value - mean) * (r.value - mean);
            counts[r.task] += 1;
        }
        (0..self.num_tasks)
            .map(|t| (counts[t] > 0).then(|| (sq[t] / counts[t] as f64).sqrt()))
            .collect()
    }

    /// Splits the campaign into per-task centers (the claim means) and a
    /// copy whose values are residuals from those centers.
    ///
    /// Iterative algorithms run on the residuals and add the centers back:
    /// the fixed points are unchanged, but the arithmetic becomes
    /// independent of a global offset (useful both numerically — dBm
    /// values around −80 waste mantissa on the offset — and for exact
    /// translation equivariance).
    ///
    /// One flat pass computes the centers and the residual copy shares
    /// this campaign's CSR caches (the index structure is position-based
    /// and value-independent), so no re-indexing or re-validation runs.
    pub fn centered(&self) -> (SensingData, Vec<Option<f64>>) {
        let centers = self.task_means();
        let mut centered = self.clone();
        for r in &mut centered.reports {
            let c = centers[r.task].expect("reported task has a center");
            r.value -= c;
        }
        (centered, centers)
    }

    /// The activeness `α_i = |T_i| / m` of an account (Eq. 9).
    pub fn activeness(&self, account: usize) -> f64 {
        if self.num_tasks == 0 {
            return 0.0;
        }
        self.account_reports(account).len() as f64 / self.num_tasks as f64
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        Json::obj([
            ("account", self.account.to_json()),
            ("task", self.task.to_json()),
            ("value", self.value.to_json()),
            ("timestamp", self.timestamp.to_json()),
        ])
    }
}

impl ToJson for SensingData {
    /// Encodes the semantic content — task count and the report list; the
    /// per-account and per-task indexes are derivable and omitted.
    fn to_json(&self) -> Json {
        Json::obj([
            ("num_tasks", self.num_tasks.to_json()),
            ("reports", self.reports.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_stay_consistent() {
        let mut d = SensingData::new(3);
        d.add_report(2, 1, 5.0, 10.0);
        d.add_report(0, 1, 6.0, 11.0);
        d.add_report(0, 2, 7.0, 12.0);
        assert_eq!(d.num_accounts(), 3);
        assert_eq!(d.num_reports(), 3);
        assert_eq!(d.tasks_of(0), vec![1, 2]);
        assert_eq!(d.tasks_of(1), Vec::<usize>::new());
        assert_eq!(d.task_reports(1).len(), 2);
        assert_eq!(d.task_reports(0).len(), 0);
        assert_eq!(d.reports_for_task(1).len(), 2);
    }

    #[test]
    fn csr_index_survives_interleaved_reads_and_writes() {
        // Reads build the cache; the next write must invalidate it.
        let mut d = SensingData::new(2);
        d.add_report(0, 0, 1.0, 0.0);
        assert_eq!(d.task_reports(0).len(), 1);
        assert_eq!(d.account_reports(0).len(), 1);
        d.add_report(1, 0, 2.0, 1.0);
        d.add_report(1, 1, 3.0, 2.0);
        assert_eq!(d.task_reports(0).len(), 2);
        assert_eq!(d.task_report_indices(1), &[2]);
        assert_eq!(d.account_reports(1).len(), 2);
    }

    #[test]
    fn task_reports_preserve_insertion_order() {
        let mut d = SensingData::new(1);
        for (a, v) in [(3usize, 30.0), (0, 0.0), (2, 20.0)] {
            d.add_report(a, 0, v, 0.0);
        }
        let accounts: Vec<usize> = d.task_reports(0).map(|r| r.account).collect();
        assert_eq!(accounts, vec![3, 0, 2]);
    }

    #[test]
    fn reserve_accounts_extends_and_invalidates() {
        let mut d = SensingData::new(1);
        d.add_report(0, 0, 1.0, 0.0);
        assert_eq!(d.account_reports(0).len(), 1); // builds the cache
        d.reserve_accounts(5);
        assert_eq!(d.num_accounts(), 5);
        assert_eq!(d.account_reports(4).len(), 0);
        assert_eq!(d.account_reports(7).len(), 0); // beyond reserve: empty
    }

    #[test]
    fn equality_ignores_index_caches() {
        let mut a = SensingData::new(2);
        a.add_report(0, 0, 1.0, 0.0);
        let mut b = SensingData::new(2);
        b.add_report(0, 0, 1.0, 0.0);
        let _ = a.task_reports(0).len(); // a has a built cache, b has not
        assert_eq!(a, b);
        b.reserve_accounts(3);
        assert_ne!(a, b);
    }

    #[test]
    fn trajectory_sorted_by_time() {
        let mut d = SensingData::new(3);
        d.add_report(0, 2, 1.0, 30.0);
        d.add_report(0, 0, 2.0, 10.0);
        d.add_report(0, 1, 3.0, 20.0);
        let traj = d.trajectory_of(0);
        let tasks: Vec<usize> = traj.iter().map(|r| r.task).collect();
        assert_eq!(tasks, vec![0, 1, 2]);
    }

    #[test]
    fn activeness_matches_eq9() {
        let mut d = SensingData::new(4);
        d.add_report(0, 0, 1.0, 0.0);
        d.add_report(0, 3, 1.0, 1.0);
        assert_eq!(d.activeness(0), 0.5);
        assert_eq!(d.activeness(7), 0.0);
    }

    #[test]
    fn task_value_std_handles_empty_tasks() {
        let mut d = SensingData::new(2);
        d.add_report(0, 0, 2.0, 0.0);
        d.add_report(1, 0, 4.0, 0.0);
        let stds = d.task_value_std();
        assert!((stds[0].unwrap() - 1.0).abs() < 1e-12);
        assert!(stds[1].is_none());
    }

    #[test]
    fn task_means_flat_pass_matches_grouped() {
        let mut d = SensingData::new(3);
        d.add_report(0, 0, 1.5, 0.0);
        d.add_report(1, 2, -4.0, 0.0);
        d.add_report(2, 0, 2.5, 0.0);
        d.add_report(3, 2, -6.0, 0.0);
        let means = d.task_means();
        assert_eq!(means[0], Some((1.5 + 2.5) / 2.0));
        assert_eq!(means[1], None);
        assert_eq!(means[2], Some((-4.0 + -6.0) / 2.0));
    }

    #[test]
    fn centered_shares_index_structure() {
        let mut d = SensingData::new(2);
        d.add_report(0, 0, -80.0, 0.0);
        d.add_report(1, 0, -82.0, 1.0);
        d.add_report(1, 1, -70.0, 2.0);
        let (centered, centers) = d.centered();
        assert_eq!(centers[0], Some(-81.0));
        assert_eq!(centers[1], Some(-70.0));
        assert_eq!(centered.num_accounts(), d.num_accounts());
        assert_eq!(centered.task_report_indices(0), d.task_report_indices(0));
        let vals: Vec<f64> = centered.task_reports(0).map(|r| r.value).collect();
        assert_eq!(vals, vec![1.0, -1.0]);
        // Residuals keep the original timestamps.
        assert_eq!(centered.reports()[2].timestamp, 2.0);
    }

    #[test]
    #[should_panic(expected = "already reported")]
    fn duplicate_report_panics() {
        let mut d = SensingData::new(1);
        d.add_report(0, 0, 1.0, 0.0);
        d.add_report(0, 0, 2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_task_panics() {
        let mut d = SensingData::new(1);
        d.add_report(0, 1, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_value_panics() {
        let mut d = SensingData::new(1);
        d.add_report(0, 0, f64::NAN, 0.0);
    }
}
