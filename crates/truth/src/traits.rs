//! The common interface of truth discovery algorithms.

use crate::data::SensingData;

/// Output of a truth discovery run.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthDiscoveryResult {
    /// Estimated truth per task; `None` for tasks nobody reported.
    pub truths: Vec<Option<f64>>,
    /// Final per-account weights (higher = judged more reliable). Empty for
    /// algorithms without a weight notion (e.g. median vote).
    pub weights: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the convergence criterion was met before the iteration cap.
    pub converged: bool,
}

impl TruthDiscoveryResult {
    /// The truths as plain values, substituting `default` for unreported
    /// tasks.
    pub fn truths_or(&self, default: f64) -> Vec<f64> {
        self.truths.iter().map(|t| t.unwrap_or(default)).collect()
    }
}

/// A truth discovery algorithm: reports in, per-task truth estimates out.
///
/// Implementations must be deterministic for a given input, so evaluation
/// sweeps are reproducible.
pub trait TruthDiscovery {
    /// Runs the algorithm on a campaign's reports.
    fn discover(&self, data: &SensingData) -> TruthDiscoveryResult;

    /// A short human-readable name for result tables (e.g. `"CRH"`).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truths_or_substitutes_missing() {
        let r = TruthDiscoveryResult {
            truths: vec![Some(1.0), None],
            weights: vec![],
            iterations: 1,
            converged: true,
        };
        assert_eq!(r.truths_or(9.0), vec![1.0, 9.0]);
    }
}
