//! End-to-end framework cost (Algorithm 2) versus plain CRH.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use srtd_core::{AgTr, SybilResistantTd};
use srtd_sensing::{Scenario, ScenarioConfig};
use srtd_truth::{Crh, TruthDiscovery};

fn bench_framework(c: &mut Criterion) {
    let mut group = c.benchmark_group("framework_end_to_end");
    group.sample_size(20);
    for &n in &[8usize, 24, 64] {
        let cfg = ScenarioConfig {
            num_legit: n,
            ..ScenarioConfig::paper_default()
        }
        .with_seed(6);
        let s = Scenario::generate(&cfg);
        group.bench_with_input(BenchmarkId::new("crh_baseline", n), &s, |b, s| {
            b.iter(|| Crh::default().discover(black_box(&s.data)));
        });
        group.bench_with_input(BenchmarkId::new("td_tr", n), &s, |b, s| {
            b.iter(|| {
                SybilResistantTd::new(AgTr::default()).discover(black_box(&s.data), &s.fingerprints)
            });
        });
    }
    // Scenario generation itself (simulation cost, for context).
    group.bench_function("scenario_generation_paper_scale", |b| {
        let cfg = ScenarioConfig::paper_default().with_seed(7);
        b.iter(|| Scenario::generate(black_box(&cfg)));
    });
    group.finish();
}

criterion_group!(benches, bench_framework);
criterion_main!(benches);
