//! Contingency tables between two labelings of the same items.

use std::collections::HashMap;

/// A contingency table between two partitions of the same item set.
///
/// Rows index the classes of the first labeling, columns the classes of the
/// second. Class labels may be arbitrary `usize` values (they are compacted
/// internally), so grouping results can be compared directly against ground
/// truth without relabeling.
///
/// # Examples
///
/// ```
/// use srtd_metrics::ContingencyTable;
///
/// let table = ContingencyTable::from_labels(&[0, 0, 1], &[5, 5, 9]);
/// assert_eq!(table.total(), 3);
/// assert_eq!(table.rows(), 2);
/// assert_eq!(table.cols(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContingencyTable {
    counts: Vec<Vec<usize>>,
    row_sums: Vec<usize>,
    col_sums: Vec<usize>,
    total: usize,
}

impl ContingencyTable {
    /// Builds the table from two parallel label slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_labels(a: &[usize], b: &[usize]) -> Self {
        assert_eq!(
            a.len(),
            b.len(),
            "labelings must cover the same items ({} vs {})",
            a.len(),
            b.len()
        );
        let mut a_ids: HashMap<usize, usize> = HashMap::new();
        let mut b_ids: HashMap<usize, usize> = HashMap::new();
        for &label in a {
            let next = a_ids.len();
            a_ids.entry(label).or_insert(next);
        }
        for &label in b {
            let next = b_ids.len();
            b_ids.entry(label).or_insert(next);
        }
        let (r, c) = (a_ids.len(), b_ids.len());
        let mut counts = vec![vec![0usize; c]; r];
        for (&la, &lb) in a.iter().zip(b) {
            counts[a_ids[&la]][b_ids[&lb]] += 1;
        }
        let row_sums: Vec<usize> = counts.iter().map(|row| row.iter().sum()).collect();
        let col_sums: Vec<usize> = (0..c)
            .map(|j| counts.iter().map(|row| row[j]).sum())
            .collect();
        Self {
            counts,
            row_sums,
            col_sums,
            total: a.len(),
        }
    }

    /// Number of rows (classes in the first labeling).
    pub fn rows(&self) -> usize {
        self.counts.len()
    }

    /// Number of columns (classes in the second labeling).
    pub fn cols(&self) -> usize {
        self.col_sums.len()
    }

    /// Total number of items.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Cell count at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn cell(&self, row: usize, col: usize) -> usize {
        self.counts[row][col]
    }

    /// Row marginal sums.
    pub fn row_sums(&self) -> &[usize] {
        &self.row_sums
    }

    /// Column marginal sums.
    pub fn col_sums(&self) -> &[usize] {
        &self.col_sums
    }

    /// Iterates over all cells.
    pub fn cells(&self) -> impl Iterator<Item = usize> + '_ {
        self.counts.iter().flat_map(|row| row.iter().copied())
    }

    /// `Σ C(n_ij, 2)` over all cells — the pair-agreement count used by the
    /// Rand family of indices.
    pub fn pair_agreements(&self) -> u128 {
        self.cells().map(choose2).sum()
    }

    /// `Σ C(a_i, 2)` over row sums.
    pub fn row_pairs(&self) -> u128 {
        self.row_sums.iter().map(|&s| choose2(s)).sum()
    }

    /// `Σ C(b_j, 2)` over column sums.
    pub fn col_pairs(&self) -> u128 {
        self.col_sums.iter().map(|&s| choose2(s)).sum()
    }
}

/// `n` choose 2, as `u128` to avoid overflow on large partitions.
pub(crate) fn choose2(n: usize) -> u128 {
    let n = n as u128;
    n * n.saturating_sub(1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginals_sum_to_total() {
        let t = ContingencyTable::from_labels(&[0, 0, 1, 2, 2, 2], &[1, 1, 1, 0, 0, 1]);
        assert_eq!(t.total(), 6);
        assert_eq!(t.row_sums().iter().sum::<usize>(), 6);
        assert_eq!(t.col_sums().iter().sum::<usize>(), 6);
    }

    #[test]
    fn arbitrary_labels_are_compacted() {
        let t = ContingencyTable::from_labels(&[100, 100, 7], &[42, 3, 3]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.cell(0, 0), 1); // item 0: labels (100, 42)
        assert_eq!(t.cell(0, 1), 1); // item 1: labels (100, 3)
        assert_eq!(t.cell(1, 1), 1); // item 2: labels (7, 3)
    }

    #[test]
    fn choose2_basics() {
        assert_eq!(choose2(0), 0);
        assert_eq!(choose2(1), 0);
        assert_eq!(choose2(2), 1);
        assert_eq!(choose2(5), 10);
    }

    #[test]
    #[should_panic(expected = "same items")]
    fn mismatched_lengths_panic() {
        ContingencyTable::from_labels(&[0], &[0, 1]);
    }

    #[test]
    fn empty_labelings() {
        let t = ContingencyTable::from_labels(&[], &[]);
        assert_eq!(t.total(), 0);
        assert_eq!(t.rows(), 0);
        assert_eq!(t.pair_agreements(), 0);
    }
}
