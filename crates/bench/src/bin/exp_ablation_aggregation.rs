//! Ablation: the Eq. 3 group-aggregation variants.
//!
//! Eq. 3 as printed is degenerate (its denominator is identically zero; see
//! `DESIGN.md`), so the framework offers three well-defined readings. This
//! ablation compares their MAE under the full-activeness attack with each
//! grouping method.
//!
//! Run with: `cargo run -p srtd-bench --release --bin exp_ablation_aggregation [seeds]`

use srtd_bench::table::Table;
use srtd_core::{AgFp, AgTr, AgTs, FrameworkConfig, GroupAggregation, SybilResistantTd};
use srtd_metrics::mae;
use srtd_sensing::{Scenario, ScenarioConfig};

const AGGREGATIONS: [(GroupAggregation, &str); 3] = [
    (GroupAggregation::Mean, "mean"),
    (GroupAggregation::Median, "median"),
    (
        GroupAggregation::AbsoluteDeviationWeighted,
        "abs-dev (Eq.3)",
    ),
];

fn run(seeds: u64, make_mae: impl Fn(&Scenario, GroupAggregation) -> f64) -> Vec<f64> {
    AGGREGATIONS
        .iter()
        .map(|&(agg, _)| {
            (0..seeds)
                .map(|seed| {
                    let s = Scenario::generate(&ScenarioConfig::paper_default().with_seed(seed));
                    make_mae(&s, agg)
                })
                .sum::<f64>()
                / seeds as f64
        })
        .collect()
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    println!("Ablation — Eq. 3 group aggregation variants ({seeds} seeds)\n");

    let mut t = Table::new(
        ["grouping", "mean", "median", "abs-dev (Eq.3)"]
            .map(String::from)
            .to_vec(),
    );
    let config = |agg| FrameworkConfig {
        aggregation: agg,
        ..FrameworkConfig::default()
    };
    let rows: Vec<(&str, Vec<f64>)> = vec![
        (
            "TD-FP",
            run(seeds, |s, agg| {
                let r = SybilResistantTd::with_config(AgFp::default(), config(agg))
                    .discover(&s.data, &s.fingerprints);
                mae(&r.truths_or(0.0), &s.ground_truth).expect("lengths")
            }),
        ),
        (
            "TD-TS",
            run(seeds, |s, agg| {
                let r = SybilResistantTd::with_config(AgTs::default(), config(agg))
                    .discover(&s.data, &s.fingerprints);
                mae(&r.truths_or(0.0), &s.ground_truth).expect("lengths")
            }),
        ),
        (
            "TD-TR",
            run(seeds, |s, agg| {
                let r = SybilResistantTd::with_config(AgTr::default(), config(agg))
                    .discover(&s.data, &s.fingerprints);
                mae(&r.truths_or(0.0), &s.ground_truth).expect("lengths")
            }),
        ),
    ];
    for (name, values) in &rows {
        let mut row = vec![name.to_string()];
        row.extend(values.iter().map(|v| format!("{v:.2}")));
        t.add_row(row);
    }
    println!("{}", t.render());
    println!("expected shape: when grouping is accurate (TD-TR row) the choice");
    println!("does not matter — attacker claims are near-identical, so every");
    println!("aggregate collapses to ~-50 and the variants coincide. The choice");
    println!("only moves the needle for inaccurate groupings (TD-FP/TD-TS rows),");
    println!("where a merged mixed group's aggregate depends on the rule; the");
    println!("median can then swing either way depending on who holds the");
    println!("within-group majority.");
    for (name, values) in &rows {
        for v in values {
            assert!(v.is_finite(), "{name} produced a non-finite MAE");
        }
    }
    println!("\n[ablation complete]");
}
