//! Accuracy and clustering-quality metrics used throughout the evaluation.
//!
//! The paper measures two things:
//!
//! * **aggregation accuracy** of truth discovery, via the mean absolute
//!   error between estimated and ground-truth task values (§V, "we use the
//!   mean absolute error (MAE) as the metric") — see [`mae`] and friends in
//!   [`error`];
//! * **account-grouping quality**, via the Adjusted Rand Index between the
//!   produced grouping and the true account-to-user assignment (§V-B) — see
//!   [`adjusted_rand_index`] and friends in [`clustering`].
//!
//! # Examples
//!
//! ```
//! use srtd_metrics::{adjusted_rand_index, mae};
//!
//! let err = mae(&[1.0, 2.0], &[1.5, 1.5]).unwrap();
//! assert!((err - 0.5).abs() < 1e-12);
//!
//! let ari = adjusted_rand_index(&[0, 0, 1, 1], &[1, 1, 0, 0]);
//! assert!((ari - 1.0).abs() < 1e-12); // identical partitions up to relabeling
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clustering;
pub mod contingency;
pub mod error;
pub mod pairs;

pub use clustering::{adjusted_rand_index, normalized_mutual_information, purity, rand_index};
pub use contingency::ContingencyTable;
pub use error::{mae, max_absolute_error, rmse, sum_squared_error, LengthMismatch};
pub use pairs::PairDiagnostics;
