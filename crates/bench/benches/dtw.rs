//! DTW cost across series lengths, full versus Sakoe–Chiba banded.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use srtd_timeseries::Dtw;

fn series(n: usize, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.11 + phase).sin() * 5.0)
        .collect()
}

fn bench_dtw(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtw");
    for &n in &[50usize, 200, 800] {
        let a = series(n, 0.0);
        let b = series(n, 0.8);
        group.bench_with_input(BenchmarkId::new("full", n), &(&a, &b), |bench, (a, b)| {
            bench.iter(|| Dtw::new().distance(black_box(a), black_box(b)));
        });
        group.bench_with_input(BenchmarkId::new("band16", n), &(&a, &b), |bench, (a, b)| {
            bench.iter(|| {
                Dtw::new()
                    .with_band(16)
                    .distance(black_box(a), black_box(b))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dtw);
criterion_main!(benches);
