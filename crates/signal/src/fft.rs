//! Iterative radix-2 Cooley–Tukey fast Fourier transform.

use crate::Complex;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Forward twiddle factors `e^(−2πik/n)` for `k < n/2`, cached per size.
///
/// Every stage of a length-`n` transform reads this one table at stride
/// `n / len`, so the trig evaluations happen once per size per process
/// instead of once per butterfly. Each table entry is computed directly
/// from its angle (not by repeated multiplication), and every caller —
/// whichever thread it runs on — sees the same table, so transforms stay
/// byte-identical across threads and call orders.
fn twiddle_table(n: usize) -> Arc<Vec<Complex>> {
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<Vec<Complex>>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("twiddle cache poisoned");
    map.entry(n)
        .or_insert_with(|| {
            let step = -2.0 * std::f64::consts::PI / n as f64;
            Arc::new(
                (0..n / 2)
                    .map(|k| Complex::from_angle(step * k as f64))
                    .collect(),
            )
        })
        .clone()
}

/// Returns the smallest power of two `>= n` (and `>= 1`).
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward FFT.
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
pub fn fft_in_place(buf: &mut [Complex]) {
    transform(buf, false);
}

/// In-place inverse FFT (including the `1/N` normalization).
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
pub fn ifft_in_place(buf: &mut [Complex]) {
    transform(buf, true);
    let scale = 1.0 / buf.len() as f64;
    for z in buf.iter_mut() {
        *z = z.scale(scale);
    }
}

fn transform(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    srtd_runtime::obs::counter_add("signal.fft.calls", 1);
    srtd_runtime::obs::observe("signal.fft.len", n as f64);
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            buf.swap(i, j);
        }
    }
    // Butterflies, reading each stage's twiddles from the shared table at
    // stride `n / len` (no per-butterfly phasor accumulation, so stage
    // twiddles carry full `sin`/`cos` precision at every index).
    let table = twiddle_table(n);
    let mut len = 2;
    while len <= n {
        let stride = n / len;
        for start in (0..n).step_by(len) {
            for k in 0..len / 2 {
                let tw = table[k * stride];
                let w = if inverse { tw.conj() } else { tw };
                let u = buf[start + k];
                let v = buf[start + k + len / 2] * w;
                buf[start + k] = u + v;
                buf[start + k + len / 2] = u - v;
            }
        }
        len <<= 1;
    }
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
///
/// Returns the full complex spectrum of length `next_power_of_two(x.len())`.
/// An empty input yields a single zero bin.
pub fn fft_real(x: &[f64]) -> Vec<Complex> {
    let n = next_power_of_two(x.len());
    let mut buf: Vec<Complex> = Vec::with_capacity(n);
    buf.extend(x.iter().map(|&v| Complex::real(v)));
    buf.resize(n, Complex::ZERO);
    fft_in_place(&mut buf);
    buf
}

/// Forward FFTs of two real signals via one complex transform
/// (the "two-for-one" real FFT).
///
/// `x` rides in the real lane and `y` in the imaginary lane of a single
/// buffer; after one FFT the conjugate-symmetry split
/// `X[k] = (Z[k] + conj(Z[n−k]))/2`, `Y[k] = (Z[k] − conj(Z[n−k]))/(2i)`
/// recovers both spectra. Both signals are zero-padded to the next power
/// of two at or above the longer length, so the returned spectra share
/// that length. With equal-length inputs each spectrum matches
/// [`fft_real`] of that signal up to rounding in the split (≲1e-9 for
/// typical sensor magnitudes); it is *not* bit-identical, but it is
/// deterministic — the same inputs give the same bits on every run and
/// thread.
pub fn fft_real_pair(x: &[f64], y: &[f64]) -> (Vec<Complex>, Vec<Complex>) {
    srtd_runtime::obs::counter_add("signal.fft.real_pair_calls", 1);
    let n = next_power_of_two(x.len().max(y.len()));
    let mut buf = vec![Complex::ZERO; n];
    for (slot, &v) in buf.iter_mut().zip(x) {
        slot.re = v;
    }
    for (slot, &v) in buf.iter_mut().zip(y) {
        slot.im = v;
    }
    fft_in_place(&mut buf);
    let mut fx = Vec::with_capacity(n);
    let mut fy = Vec::with_capacity(n);
    for k in 0..n {
        let z = buf[k];
        let zc = buf[(n - k) % n].conj();
        let s = (z + zc).scale(0.5);
        let d = (z - zc).scale(0.5);
        fx.push(s);
        // d = i·Y[k], so Y[k] = −i·d.
        fy.push(Complex::new(d.im, -d.re));
    }
    (fx, fy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_runtime::rng::Rng;
    use srtd_runtime::{prop, prop_assert};

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &v) in x.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    acc += v * Complex::from_angle(ang);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let mut fast = x.clone();
        fft_in_place(&mut fast);
        let slow = naive_dft(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut buf = vec![Complex::ZERO; 8];
        buf[0] = Complex::ONE;
        fft_in_place(&mut buf);
        for z in &buf {
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&x);
        let mags: Vec<f64> = spec.iter().map(|z| z.abs()).collect();
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(peak == k0 || peak == n - k0);
        assert!((mags[k0] - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(fft_real(&[]).len(), 1);
        let spec = fft_real(&[3.0]);
        assert_eq!(spec.len(), 1);
        assert_eq!(spec[0], Complex::real(3.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut buf = vec![Complex::ZERO; 6];
        fft_in_place(&mut buf);
    }

    /// fft → ifft returns the original signal.
    #[test]
    fn round_trip() {
        prop::check(
            |rng| prop::vec_with(rng, 1..200, |r| r.gen_range(-1e3f64..1e3)),
            |xs| {
                let spec = fft_real(xs);
                let mut back = spec.clone();
                ifft_in_place(&mut back);
                for (i, &orig) in xs.iter().enumerate() {
                    prop_assert!((back[i].re - orig).abs() < 1e-8);
                    prop_assert!(back[i].im.abs() < 1e-8);
                }
                Ok(())
            },
        );
    }

    /// Parseval: Σ|x|² = (1/N) Σ|X|² for power-of-two inputs.
    #[test]
    fn parseval() {
        prop::check(
            |rng| prop::vec_with(rng, 1..7, |r| r.gen_range(-1e2f64..1e2)),
            |xs| {
                let n = 64usize;
                let x: Vec<f64> = xs.iter().cycle().take(n).copied().collect();
                let spec = fft_real(&x);
                let time_energy: f64 = x.iter().map(|v| v * v).sum();
                let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
                prop_assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy.max(1.0));
                Ok(())
            },
        );
    }

    /// The two-for-one split matches independent complex-path FFTs to
    /// high precision, on even and odd input lengths (equal and unequal).
    #[test]
    fn real_pair_matches_independent_ffts() {
        prop::check(
            |rng| {
                let lx = rng.gen_range(1usize..130);
                let ly = if rng.gen_range(0u32..2) == 0 {
                    lx
                } else {
                    rng.gen_range(1usize..130)
                };
                (
                    prop::vec_with(rng, lx..lx + 1, |r| r.gen_range(-1e3f64..1e3)),
                    prop::vec_with(rng, ly..ly + 1, |r| r.gen_range(-1e3f64..1e3)),
                )
            },
            |(x, y)| {
                let (fx, fy) = fft_real_pair(x, y);
                let n = next_power_of_two(x.len().max(y.len()));
                prop_assert!(fx.len() == n && fy.len() == n);
                // Reference: each signal padded to the shared length and
                // run through the plain complex path.
                let reference = |s: &[f64]| {
                    let mut buf: Vec<Complex> = s.iter().map(|&v| Complex::real(v)).collect();
                    buf.resize(n, Complex::ZERO);
                    fft_in_place(&mut buf);
                    buf
                };
                let scale: f64 = x
                    .iter()
                    .chain(y.iter())
                    .fold(1.0f64, |m, &v| m.max(v.abs()));
                for (got, want) in fx
                    .iter()
                    .zip(reference(x))
                    .chain(fy.iter().zip(reference(y)))
                {
                    prop_assert!(
                        (*got - want).abs() < 1e-9 * scale * n as f64,
                        "{got:?} vs {want:?}"
                    );
                }
                Ok(())
            },
        );
    }

    /// The pair split on (x, 0) and (0, y) reproduces each single
    /// spectrum exactly in structure: zero lane in, zero spectrum out.
    #[test]
    fn real_pair_zero_lane_is_zero() {
        let x = [1.0, -2.0, 3.0, 0.5, -0.25];
        let (fx, fy) = fft_real_pair(&x, &[]);
        let single = fft_real(&x);
        for (a, b) in fx.iter().zip(&single) {
            assert!((*a - *b).abs() < 1e-12, "{a:?} vs {b:?}");
        }
        for z in &fy {
            assert!(z.abs() < 1e-12);
        }
    }

    /// Same inputs give the same bits, run after run.
    #[test]
    fn real_pair_is_deterministic() {
        let x: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..100).map(|i| (i as f64 * 0.91).cos()).collect();
        let a = fft_real_pair(&x, &y);
        let b = fft_real_pair(&x, &y);
        for (p, q) in a.0.iter().zip(&b.0).chain(a.1.iter().zip(&b.1)) {
            assert_eq!(p.re.to_bits(), q.re.to_bits());
            assert_eq!(p.im.to_bits(), q.im.to_bits());
        }
    }

    /// Linearity of the transform.
    #[test]
    fn linearity() {
        prop::check(
            |rng| {
                (
                    prop::vec_with(rng, 16..17, |r| r.gen_range(-10f64..10.0)),
                    prop::vec_with(rng, 16..17, |r| r.gen_range(-10f64..10.0)),
                    rng.gen_range(-3f64..3.0),
                )
            },
            |(xs, ys, a)| {
                let a = *a;
                let sum: Vec<f64> = xs.iter().zip(ys).map(|(x, y)| a * x + y).collect();
                let fs = fft_real(&sum);
                let fx = fft_real(xs);
                let fy = fft_real(ys);
                for k in 0..fs.len() {
                    let want = fx[k].scale(a) + fy[k];
                    prop_assert!((fs[k] - want).abs() < 1e-8);
                }
                Ok(())
            },
        );
    }
}
