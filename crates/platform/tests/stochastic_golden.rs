//! Golden and cross-thread tests for deterministic audit-target
//! selection, plus an exhaustive sweep of the k-failure conviction
//! machine.
//!
//! The golden vectors pin the exact selection function: any change to
//! the seed chain (SplitMix64 stages over seed → epoch → generation) or
//! to Floyd's sampling silently reshuffles who gets audited, which
//! would invalidate recorded experiments. Changing them is allowed but
//! must be deliberate.

use srtd_platform::{AuditPolicy, StochasticAuditor};
use srtd_runtime::parallel::{parallel_map, set_max_threads};
use srtd_truth::SensingData;

/// The exact targets for policy seed 42 over the first six epochs of an
/// 18-account campaign (4 targets per epoch, data generation 1).
#[test]
fn golden_target_sequence_is_pinned() {
    let golden: [&[usize]; 6] = [
        &[1, 3, 16, 17],
        &[4, 9, 12, 14],
        &[3, 4, 12, 16],
        &[0, 3, 12, 14],
        &[0, 4, 8, 13],
        &[7, 8, 14, 17],
    ];
    for (i, want) in golden.iter().enumerate() {
        let got = StochasticAuditor::select_targets(42, i as u64 + 1, 1, 4, 18);
        assert_eq!(&got, want, "epoch {}", i + 1);
    }
    // The data generation is a separate chain stage: same epoch,
    // different generation, different targets.
    assert_eq!(
        StochasticAuditor::select_targets(42, 1, 2, 4, 18),
        vec![1, 7, 8, 12]
    );
    assert_eq!(
        StochasticAuditor::select_targets(42, 1, 3, 4, 18),
        vec![0, 6, 12, 14]
    );
}

/// Selection is identical under any worker-thread count — including
/// when invoked *from inside* the parallel runtime's workers.
#[test]
fn selection_is_thread_count_invariant() {
    let epochs: Vec<u64> = (1..=64).collect();
    let mut per_count = Vec::new();
    for threads in [1usize, 4] {
        set_max_threads(threads);
        let picks: Vec<Vec<usize>> = parallel_map(&epochs, |&e| {
            StochasticAuditor::select_targets(7, e, 3, 5, 40)
        });
        per_count.push(picks);
    }
    set_max_threads(0);
    assert_eq!(per_count[0], per_count[1], "1-thread vs 4-thread selection");
    // And the parallel runs match plain sequential evaluation.
    for (i, &e) in epochs.iter().enumerate() {
        assert_eq!(
            per_count[0][i],
            StochasticAuditor::select_targets(7, e, 3, 5, 40)
        );
    }
}

/// Consecutive epochs are decorrelated: over many epochs no selection
/// repeats its predecessor, and the mean overlap between consecutive
/// 4-of-40 draws stays near the hypergeometric expectation (0.4), far
/// from the 4.0 a stuck or counter-like selector would show.
#[test]
fn consecutive_epochs_are_decorrelated() {
    let mut overlap_sum = 0usize;
    let mut prev = StochasticAuditor::select_targets(3, 0, 9, 4, 40);
    for epoch in 1..=500u64 {
        let cur = StochasticAuditor::select_targets(3, epoch, 9, 4, 40);
        assert_ne!(cur, prev, "epoch {epoch} repeated its predecessor");
        overlap_sum += cur.iter().filter(|t| prev.contains(t)).count();
        prev = cur;
    }
    let mean_overlap = overlap_sum as f64 / 500.0;
    assert!(
        mean_overlap < 1.0,
        "consecutive selections overlap too much: {mean_overlap}"
    );
}

fn deviant_data(n_accounts: usize) -> SensingData {
    let mut data = SensingData::new(2);
    for a in 0..n_accounts {
        data.add_report(a, 0, -50.0, a as f64);
        data.add_report(a, 1, -50.0, a as f64 + 0.5);
    }
    data
}

/// The conviction machine fires at exactly `k` failed audits for every
/// `k`, never before, never twice — swept exhaustively over
/// `k ∈ 1..=4` with the failure epochs interleaved by passes.
#[test]
fn conviction_machine_is_exact_for_every_k() {
    let reference = vec![Some(-75.0), Some(-75.0)];
    let clean = vec![None, None];
    for k in 1..=4u32 {
        let mut auditor = StochasticAuditor::new(AuditPolicy {
            conviction_failures: k,
            min_deviant: 1,
            targets_per_epoch: 1,
            ..AuditPolicy::default()
        });
        let data = deviant_data(1);
        let mut failures = 0u32;
        // Alternate failing audits with reference-free (passing) epochs:
        // passes must not advance or reset the counter.
        for epoch in 1..=(2 * k as u64) {
            let failing_epoch = epoch % 2 == 1;
            let pass = auditor.audit_epoch(
                epoch,
                0,
                &data,
                if failing_epoch { &reference } else { &clean },
            );
            if failing_epoch {
                failures += 1;
            }
            assert_eq!(auditor.failures(0), failures, "k={k} epoch={epoch}");
            if failures == k && failing_epoch {
                assert_eq!(pass.newly_convicted, vec![0], "k={k}: convict at k-th");
                assert_eq!(auditor.convicted_epoch(0), Some(epoch));
            } else {
                assert!(pass.newly_convicted.is_empty(), "k={k} epoch={epoch}");
            }
        }
        assert!(auditor.is_convicted(0));
        assert_eq!(auditor.convicted(), vec![0]);
    }
}

/// Failure counters are per-account and survive population growth: an
/// account keeps its history when later epochs bring more accounts.
#[test]
fn failure_state_survives_population_growth() {
    let mut auditor = StochasticAuditor::new(AuditPolicy {
        conviction_failures: 2,
        min_deviant: 1,
        targets_per_epoch: 8,
        ..AuditPolicy::default()
    });
    let reference = vec![Some(-75.0), Some(-75.0)];
    auditor.audit_epoch(1, 0, &deviant_data(2), &reference);
    assert_eq!(auditor.failures(0), 1);
    assert!(auditor.convicted().is_empty());
    // The campaign grows to 6 accounts; the old failure counts persist
    // and the second failure convicts.
    let pass = auditor.audit_epoch(2, 1, &deviant_data(6), &reference);
    assert!(pass.targets.len() >= 2, "enough targets to cover account 0");
    assert_eq!(auditor.failures(0), 2);
    assert!(auditor.is_convicted(0));
    assert!(auditor.is_convicted(1));
    assert!(!auditor.is_convicted(5), "new accounts start clean");
}
