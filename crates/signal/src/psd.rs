//! Welch's method: averaged periodograms for stable spectral estimates.
//!
//! A single 6-second FFT of a noisy sensor capture has high variance per
//! bin; Welch's method splits the capture into overlapping windowed
//! segments and averages their periodograms, trading frequency resolution
//! for variance. Fingerprint features extracted from a Welch spectrum are
//! noticeably more stable across captures of the same chip.

use crate::fft::{fft_real, next_power_of_two};
use crate::spectrum::Spectrum;
use crate::window::Window;

/// Configuration for [`welch_psd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchConfig {
    /// Samples per segment (rounded up to a power of two internally).
    pub segment_len: usize,
    /// Overlap between consecutive segments, as a fraction in `[0, 0.9]`.
    pub overlap: f64,
    /// Window applied to each segment.
    pub window: Window,
}

impl Default for WelchConfig {
    fn default() -> Self {
        Self {
            segment_len: 256,
            overlap: 0.5,
            window: Window::Hann,
        }
    }
}

impl WelchConfig {
    /// Creates a configuration with the given segment length.
    ///
    /// # Panics
    ///
    /// Panics if `segment_len == 0`.
    pub fn with_segment_len(segment_len: usize) -> Self {
        assert!(segment_len > 0, "segments need at least one sample");
        Self {
            segment_len,
            ..Self::default()
        }
    }
}

/// Welch power spectral density estimate of a real signal.
///
/// Returns a [`Spectrum`] whose magnitudes are the square roots of the
/// averaged per-bin powers (so it plugs into the Table-II spectral
/// features unchanged). Signals shorter than one segment fall back to a
/// single padded periodogram.
///
/// # Panics
///
/// Panics if `sample_rate` is not positive or the overlap is outside
/// `[0, 0.9]`.
///
/// # Examples
///
/// ```
/// use srtd_signal::psd::{welch_psd, WelchConfig};
///
/// let tone: Vec<f64> = (0..2048)
///     .map(|i| (2.0 * std::f64::consts::PI * 10.0 * i as f64 / 100.0).sin())
///     .collect();
/// let spectrum = welch_psd(&tone, 100.0, &WelchConfig::default());
/// let peak_hz = spectrum.frequency(spectrum.peak_bin());
/// assert!((peak_hz - 10.0).abs() < 0.5);
/// ```
pub fn welch_psd(signal: &[f64], sample_rate: f64, config: &WelchConfig) -> Spectrum {
    assert!(
        sample_rate.is_finite() && sample_rate > 0.0,
        "sample rate must be positive"
    );
    assert!(
        (0.0..=0.9).contains(&config.overlap),
        "overlap must be in [0, 0.9], got {}",
        config.overlap
    );
    let seg = next_power_of_two(config.segment_len.max(1));
    if signal.len() <= seg {
        return Spectrum::from_signal(signal, sample_rate, config.window);
    }
    let hop = ((seg as f64) * (1.0 - config.overlap)).max(1.0) as usize;
    let half = seg / 2 + 1;
    let mut power = vec![0.0f64; half];
    let mut segments = 0usize;
    let mut start = 0usize;
    while start + seg <= signal.len() {
        let windowed = config.window.apply(&signal[start..start + seg]);
        let spec = fft_real(&windowed);
        for (p, z) in power.iter_mut().zip(spec[..half].iter()) {
            *p += z.norm_sqr();
        }
        segments += 1;
        start += hop;
    }
    debug_assert!(segments > 0);
    let magnitudes: Vec<f64> = power
        .iter()
        .map(|&p| (p / segments as f64).sqrt())
        .collect();
    Spectrum::from_magnitudes(magnitudes, sample_rate / seg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone_plus_noise(freq: f64, fs: f64, n: usize, noise: f64) -> Vec<f64> {
        let mut state = 0x12345u64;
        (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                // 32 random bits scaled into [-1, 1), zero mean.
                let u = (state >> 32) as f64 / (1u64 << 31) as f64 - 1.0;
                (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin() + noise * u
            })
            .collect()
    }

    #[test]
    fn finds_tone_under_noise() {
        let x = tone_plus_noise(12.0, 100.0, 4096, 1.5);
        let spec = welch_psd(&x, 100.0, &WelchConfig::default());
        let peak = spec.frequency(spec.peak_bin());
        assert!((peak - 12.0).abs() < 0.5, "peak at {peak}");
    }

    #[test]
    fn averaging_reduces_noise_floor_variance() {
        // Compare per-bin variance of the noise floor: Welch vs. a single
        // periodogram of the same signal.
        let x = tone_plus_noise(10.0, 100.0, 4096, 1.0);
        let single = Spectrum::from_signal(&x, 100.0, Window::Hann);
        let welch = welch_psd(&x, 100.0, &WelchConfig::with_segment_len(256));
        let spread = |s: &Spectrum| {
            // Coefficient of variation over mid-band bins (away from the
            // tone and DC).
            let mags: Vec<f64> = s
                .magnitudes()
                .iter()
                .enumerate()
                .filter(|&(k, _)| s.frequency(k) > 20.0 && s.frequency(k) < 45.0)
                .map(|(_, &m)| m)
                .collect();
            let mean = mags.iter().sum::<f64>() / mags.len() as f64;
            let var = mags.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / mags.len() as f64;
            var.sqrt() / mean
        };
        assert!(
            spread(&welch) < spread(&single),
            "welch {} vs single {}",
            spread(&welch),
            spread(&single)
        );
    }

    #[test]
    fn short_signal_falls_back_to_single_periodogram() {
        let x = tone_plus_noise(5.0, 50.0, 64, 0.0);
        let welch = welch_psd(&x, 50.0, &WelchConfig::with_segment_len(256));
        let single = Spectrum::from_signal(&x, 50.0, Window::Hann);
        assert_eq!(welch, single);
    }

    #[test]
    fn overlap_increases_segment_count_without_changing_peak() {
        let x = tone_plus_noise(8.0, 100.0, 2048, 0.5);
        let none = welch_psd(
            &x,
            100.0,
            &WelchConfig {
                overlap: 0.0,
                ..Default::default()
            },
        );
        let half = welch_psd(
            &x,
            100.0,
            &WelchConfig {
                overlap: 0.5,
                ..Default::default()
            },
        );
        assert_eq!(none.peak_bin(), half.peak_bin());
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn bad_overlap_panics() {
        welch_psd(
            &[0.0; 512],
            100.0,
            &WelchConfig {
                overlap: 0.95,
                ..Default::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_segment_panics() {
        WelchConfig::with_segment_len(0);
    }
}
