//! The deterministic subset of the observability export must be
//! byte-identical across worker-thread counts: counters, histogram
//! buckets and events depend only on the work performed, never on how
//! many threads performed it.

use srtd_runtime::json::{parse, ToJson};
use srtd_runtime::obs;
use srtd_runtime::parallel::{max_threads, parallel_map, set_max_threads};
use std::sync::Mutex;

/// Serializes the tests in this file: obs state is process-wide.
static LOCK: Mutex<()> = Mutex::new(());

/// A workload that reports from inside `parallel_map` workers: counters
/// and histogram observations from every item, events from the driver.
fn run_workload() -> String {
    obs::reset();
    let items: Vec<u64> = (0..2_000).collect();
    let out = parallel_map(&items, |&x| {
        let _span = obs::span("workload.item");
        obs::counter_add("workload.items", 1);
        obs::observe("workload.value", (x % 97) as f64);
        x.wrapping_mul(x)
    });
    obs::counter_add("workload.checksum", out.iter().fold(0u64, |a, &b| a ^ b));
    obs::event(
        "workload.done",
        [("items", (items.len()).to_json()), ("ok", true.to_json())],
    );
    obs::snapshot().deterministic_json()
}

#[test]
fn deterministic_export_is_identical_across_thread_counts() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_enabled(true);
    let prior = max_threads();

    set_max_threads(1);
    let one_thread = run_workload();
    set_max_threads(4);
    let four_threads = run_workload();
    set_max_threads(prior);
    obs::set_enabled(false);

    assert_eq!(
        one_thread, four_threads,
        "deterministic metrics must not depend on the worker count"
    );
    // And the export is valid JSON with the promised sections.
    let tree = parse(&one_thread).expect("deterministic export parses");
    let rendered = tree.render();
    assert_eq!(rendered, one_thread, "parse/render round-trip");
    for section in ["counters", "histograms", "events"] {
        assert!(one_thread.contains(section), "missing {section}");
    }
    assert!(one_thread.contains("\"workload.items\":2000"));
}

#[test]
fn disabled_runs_collect_nothing_even_under_parallelism() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_enabled(false);
    obs::reset();
    let items: Vec<u64> = (0..500).collect();
    let _ = parallel_map(&items, |&x| {
        obs::counter_add("should.not.exist", 1);
        x + 1
    });
    assert!(obs::snapshot().is_empty());
}
