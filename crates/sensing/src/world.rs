//! Ground-truth Wi-Fi signal field and noisy measurements.

use crate::poi::PoiMap;
use crate::user::MeasurementProfile;
use srtd_fingerprint::noise::normal;
use srtd_runtime::json::{Json, ToJson};
use srtd_runtime::rng::StdRng;
use srtd_runtime::rng::{Rng, SeedableRng};

/// Ground-truth Wi-Fi RSSI per POI plus the measurement model.
///
/// Each POI is covered by an access point at a random offset; the
/// ground-truth RSSI follows the log-distance path-loss model
/// `RSSI = P₀ − 10·γ·log₁₀(d/d₀)` with mild per-POI shadowing, which lands
/// values in the realistic −60…−90 dBm band the paper's Table I shows.
/// A legitimate measurement adds the user's systematic bias and random
/// noise (their [`MeasurementProfile`]).
///
/// # Examples
///
/// ```
/// use srtd_sensing::{PoiMap, WifiWorld};
///
/// let map = PoiMap::campus(10, 1);
/// let world = WifiWorld::generate(&map, 1);
/// let truth = world.ground_truth(3);
/// assert!((-95.0..=-55.0).contains(&truth));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WifiWorld {
    ground_truth: Vec<f64>,
}

impl WifiWorld {
    /// Transmit-side reference power at 1 m, in dBm.
    pub const REFERENCE_POWER_DBM: f64 = -40.0;
    /// Path-loss exponent for an indoor/campus environment.
    pub const PATH_LOSS_EXPONENT: f64 = 2.8;

    /// Generates the RSSI field for a POI map, deterministic in `seed`.
    pub fn generate(map: &PoiMap, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x57AB1E);
        let ground_truth = map
            .pois()
            .iter()
            .map(|_| {
                // AP somewhere 5–60 m away from the POI.
                let d: f64 = rng.gen_range(5.0..60.0);
                let shadowing = normal(&mut rng, 0.0, 2.0);
                let rssi = Self::REFERENCE_POWER_DBM - 10.0 * Self::PATH_LOSS_EXPONENT * d.log10()
                    + shadowing;
                rssi.clamp(-92.0, -58.0)
            })
            .collect();
        Self { ground_truth }
    }

    /// Builds a world from explicit ground truths (for tests and worked
    /// examples).
    pub fn from_truths(ground_truth: Vec<f64>) -> Self {
        Self { ground_truth }
    }

    /// Number of tasks/POIs.
    pub fn num_tasks(&self) -> usize {
        self.ground_truth.len()
    }

    /// Ground-truth RSSI of task `task` in dBm.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn ground_truth(&self, task: usize) -> f64 {
        self.ground_truth[task]
    }

    /// All ground truths, indexed by task.
    pub fn ground_truths(&self) -> &[f64] {
        &self.ground_truth
    }

    /// One noisy legitimate measurement of `task` by a user with `profile`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn measure<R: Rng + ?Sized>(
        &self,
        task: usize,
        profile: &MeasurementProfile,
        rng: &mut R,
    ) -> f64 {
        self.ground_truth[task] + profile.bias + normal(rng, 0.0, profile.noise_std)
    }
}

impl ToJson for WifiWorld {
    fn to_json(&self) -> Json {
        Json::obj([("ground_truth", self.ground_truth.to_json())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_is_deterministic_and_in_band() {
        let map = PoiMap::campus(10, 5);
        let a = WifiWorld::generate(&map, 5);
        let b = WifiWorld::generate(&map, 5);
        assert_eq!(a, b);
        for t in 0..10 {
            assert!((-92.0..=-58.0).contains(&a.ground_truth(t)));
        }
    }

    #[test]
    fn pois_have_different_truths() {
        let map = PoiMap::campus(10, 5);
        let w = WifiWorld::generate(&map, 5);
        let distinct: std::collections::HashSet<u64> =
            w.ground_truths().iter().map(|v| v.to_bits()).collect();
        assert!(distinct.len() > 5);
    }

    #[test]
    fn measurement_centers_on_truth_plus_bias() {
        let w = WifiWorld::from_truths(vec![-75.0]);
        let profile = MeasurementProfile {
            bias: 2.0,
            noise_std: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let n = 5000;
        let mean: f64 = (0..n)
            .map(|_| w.measure(0, &profile, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - (-73.0)).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn zero_noise_profile_is_exact() {
        let w = WifiWorld::from_truths(vec![-80.0]);
        let profile = MeasurementProfile {
            bias: 0.0,
            noise_std: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(w.measure(0, &profile, &mut rng), -80.0);
    }
}
