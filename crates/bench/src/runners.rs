//! One-call wrappers: run a method on a scenario and score it.

use srtd_core::{AccountGrouping, AgFp, AgTr, AgTs, SybilResistantTd};
use srtd_metrics::{adjusted_rand_index, mae};
use srtd_sensing::Scenario;
use srtd_truth::{Crh, TruthDiscovery};

/// The aggregation methods compared in Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Plain CRH (the vulnerable baseline).
    Crh,
    /// Framework with fingerprint grouping.
    TdFp,
    /// Framework with task-set grouping.
    TdTs,
    /// Framework with trajectory grouping.
    TdTr,
}

impl Method {
    /// All four methods in the paper's presentation order.
    pub const ALL: [Method; 4] = [Method::Crh, Method::TdFp, Method::TdTs, Method::TdTr];

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Method::Crh => "CRH",
            Method::TdFp => "TD-FP",
            Method::TdTs => "TD-TS",
            Method::TdTr => "TD-TR",
        }
    }

    /// Runs the method on a scenario and returns its MAE against ground
    /// truth.
    pub fn mae_on(self, scenario: &Scenario) -> f64 {
        let estimates = match self {
            Method::Crh => Crh::default().discover(&scenario.data).truths_or(0.0),
            Method::TdFp => SybilResistantTd::new(AgFp::default())
                .discover(&scenario.data, &scenario.fingerprints)
                .truths_or(0.0),
            Method::TdTs => SybilResistantTd::new(AgTs::default())
                .discover(&scenario.data, &scenario.fingerprints)
                .truths_or(0.0),
            Method::TdTr => SybilResistantTd::new(AgTr::default())
                .discover(&scenario.data, &scenario.fingerprints)
                .truths_or(0.0),
        };
        mae(&estimates, &scenario.ground_truth).expect("estimate/truth lengths match")
    }
}

/// The grouping methods compared in Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grouper {
    /// Device-fingerprint grouping.
    AgFp,
    /// Task-set grouping.
    AgTs,
    /// Trajectory grouping.
    AgTr,
}

impl Grouper {
    /// All three groupers in the paper's presentation order.
    pub const ALL: [Grouper; 3] = [Grouper::AgFp, Grouper::AgTs, Grouper::AgTr];

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Grouper::AgFp => "AG-FP",
            Grouper::AgTs => "AG-TS",
            Grouper::AgTr => "AG-TR",
        }
    }

    /// Runs the grouper on a scenario and returns its ARI against the true
    /// account-to-owner assignment (the Fig. 6 metric).
    pub fn ari_on(self, scenario: &Scenario) -> f64 {
        let grouping = match self {
            Grouper::AgFp => AgFp::default().group(&scenario.data, &scenario.fingerprints),
            Grouper::AgTs => AgTs::default().group(&scenario.data, &scenario.fingerprints),
            Grouper::AgTr => AgTr::default().group(&scenario.data, &scenario.fingerprints),
        };
        adjusted_rand_index(grouping.labels(), &scenario.owners)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srtd_sensing::ScenarioConfig;

    #[test]
    fn all_methods_produce_finite_mae() {
        let s = Scenario::generate(&ScenarioConfig::paper_default().with_seed(1));
        for m in Method::ALL {
            let v = m.mae_on(&s);
            assert!(v.is_finite() && v >= 0.0, "{}: {v}", m.name());
        }
    }

    #[test]
    fn all_groupers_produce_bounded_ari() {
        let s = Scenario::generate(&ScenarioConfig::paper_default().with_seed(2));
        for g in Grouper::ALL {
            let v = g.ari_on(&s);
            assert!((-1.0..=1.0).contains(&v), "{}: {v}", g.name());
        }
    }
}
