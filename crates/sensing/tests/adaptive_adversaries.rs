//! Property tests pinning the adaptive-adversary generator contracts.
//!
//! Three contracts back the `exp_adaptive` experiment: generation is a
//! pure function of the seed regardless of worker-thread count,
//! camouflaged claims never leave the `truth ± 1.5σ` envelope off their
//! targets, and task mimicry draws every account task set from the
//! honest population's empirical marginal.

use srtd_runtime::parallel::set_max_threads;
use srtd_runtime::prop::{self, PropConfig};
use srtd_runtime::rng::{Rng, StdRng};
use srtd_runtime::{prop_assert, prop_assert_eq};
use srtd_sensing::{AttackerSpec, FabricationStrategy, Scenario, ScenarioConfig};

/// Campaign generation is expensive; run fewer cases than the harness
/// default (matches `scenario_properties.rs`).
fn cases() -> PropConfig {
    PropConfig {
        cases: 16,
        ..PropConfig::default()
    }
}

/// A random campaign with one of each adaptive attacker: jittered
/// replay, task mimicry over mixed devices, and the fully adaptive
/// camouflage attacker.
fn adaptive_config(rng: &mut StdRng) -> ScenarioConfig {
    let tasks = rng.gen_range(6usize..16);
    let legit = rng.gen_range(6usize..14);
    let jitter = rng.gen_range(0.0f64..2400.0);
    let devices = rng.gen_range(2usize..5);
    let seed = rng.gen_range(0u64..1000);
    let la = rng.gen_range(0.3f64..0.9);
    let aa = rng.gen_range(0.3f64..0.9);
    ScenarioConfig {
        num_tasks: tasks,
        num_legit: legit,
        attackers: vec![
            AttackerSpec::adaptive_jitter(jitter),
            AttackerSpec::adaptive_mimicry(devices),
            AttackerSpec::adaptive_full(devices),
        ],
        ..ScenarioConfig::paper_default()
    }
    .with_seed(seed)
    .with_activeness(la, aa)
}

/// Generation is a pure function of the config for every adaptive
/// tactic, and independent of the worker-thread count: campaigns
/// generated under 1 and 4 threads are byte-identical.
#[test]
fn adaptive_generation_is_seed_deterministic_across_thread_counts() {
    prop::check_with(cases(), adaptive_config, |cfg| {
        set_max_threads(1);
        let single = Scenario::generate(cfg);
        set_max_threads(4);
        let quad = Scenario::generate(cfg);
        set_max_threads(0);
        prop_assert_eq!(&single.data, &quad.data);
        prop_assert_eq!(&single.fingerprints, &quad.fingerprints);
        prop_assert_eq!(&single.owners, &quad.owners);
        prop_assert_eq!(&single.devices, &quad.devices);
        prop_assert_eq!(&single.attack_targets, &quad.attack_targets);
        prop_assert_eq!(&single.ground_truth, &quad.ground_truth);
        // And a fresh run under the default thread count matches too.
        let again = Scenario::generate(cfg);
        prop_assert_eq!(&single.data, &again.data);
        Ok(())
    });
}

/// A random campaign with a single camouflaged attacker whose envelope
/// parameters vary case to case.
fn camouflage_config(rng: &mut StdRng) -> (ScenarioConfig, f64, f64) {
    let delta = -rng.gen_range(14.0f64..30.0);
    let sigma = rng.gen_range(0.5f64..4.0);
    let target_fraction = rng.gen_range(0.1f64..1.0);
    let spec = AttackerSpec::paper_attack_i().with_strategy(FabricationStrategy::Camouflaged {
        delta,
        sigma,
        target_fraction,
    });
    let cfg = ScenarioConfig {
        num_tasks: rng.gen_range(5usize..14),
        attackers: vec![spec],
        ..ScenarioConfig::paper_default()
    }
    .with_seed(rng.gen_range(0u64..1000));
    (cfg, delta, sigma)
}

/// Camouflaged claims respect the hard envelope for any (δ, σ, target
/// fraction): off-target deviations from truth stay within ±1.5σ and
/// target deviations within δ ± 1.5σ. No claim leaks the lie off its
/// targets, and every attacker has at least one target.
#[test]
fn camouflage_envelope_holds_for_any_parameters() {
    prop::check_with(cases(), camouflage_config, |(cfg, delta, sigma)| {
        let s = Scenario::generate(cfg);
        let targets = &s.attack_targets[0];
        prop_assert!(!targets.is_empty(), "camouflage must target something");
        let band = 1.5 * sigma + 1e-9;
        for (a, &sybil) in s.is_sybil.iter().enumerate() {
            if !sybil {
                continue;
            }
            for r in s.data.account_reports(a) {
                let dev = r.value - s.ground_truth[r.task];
                if targets.binary_search(&r.task).is_ok() {
                    prop_assert!(
                        (dev - delta).abs() <= band,
                        "target dev {dev} vs delta {delta} ± {band}"
                    );
                } else {
                    prop_assert!(dev.abs() <= band, "off-target dev {dev} > {band}");
                }
            }
        }
        Ok(())
    });
}

/// A random campaign with one mimicry attacker; activeness below 1 so
/// the honest marginal has real structure to mimic.
fn mimicry_config(rng: &mut StdRng) -> ScenarioConfig {
    ScenarioConfig {
        num_tasks: rng.gen_range(6usize..16),
        num_legit: rng.gen_range(6usize..14),
        attackers: vec![AttackerSpec::adaptive_mimicry(rng.gen_range(2usize..5))],
        ..ScenarioConfig::paper_default()
    }
    .with_seed(rng.gen_range(0u64..1000))
    .with_activeness(rng.gen_range(0.3f64..0.8), rng.gen_range(0.3f64..0.8))
}

/// Mimicked task sets come from the honest marginal: whenever the
/// honest support is at least as large as the per-account task count,
/// every mimicking account's tasks sit inside that support, each set
/// has exactly the activeness-mandated size, and all sets union into
/// the single walk the attacker actually performs.
#[test]
fn mimicry_sets_stay_inside_the_honest_marginal() {
    prop::check_with(cases(), mimicry_config, |cfg| {
        let s = Scenario::generate(cfg);
        let k = cfg.tasks_per_account(cfg.attacker_activeness);
        let mut honest_support = std::collections::HashSet::new();
        for a in 0..s.num_accounts() {
            if !s.is_sybil[a] {
                honest_support.extend(s.data.tasks_of(a));
            }
        }
        let sybils: Vec<usize> = (0..s.num_accounts()).filter(|&a| s.is_sybil[a]).collect();
        let mut union = std::collections::HashSet::new();
        for &a in &sybils {
            let tasks = s.data.tasks_of(a);
            prop_assert_eq!(tasks.len(), k, "mimicked set size for account {a}");
            union.extend(tasks.iter().copied());
            if honest_support.len() >= k {
                for &t in &tasks {
                    prop_assert!(
                        honest_support.contains(&t),
                        "account {a} reports task {t} outside the honest support"
                    );
                }
            }
        }
        // The attacker walked each union task once: per-task Sybil report
        // counts equal the number of accounts whose draw contains it.
        for &t in &union {
            let reports = s
                .data
                .task_reports(t)
                .filter(|r| s.is_sybil[r.account])
                .count();
            let drawn = sybils
                .iter()
                .filter(|&&a| s.data.tasks_of(a).contains(&t))
                .count();
            prop_assert_eq!(reports, drawn, "task {t} report multiplicity");
        }
        Ok(())
    });
}
