//! Tracked pipeline baseline: times the three hot paths this repo
//! optimizes — Algorithm 2 (framework iteration), the real FFT, and DTW —
//! and writes the results as `BENCH_pipeline.json` for regression
//! tracking.
//!
//! Runs in quick mode by default (a few seconds end to end) so it can be
//! part of `scripts/verify.sh`; set `SRTD_BENCH_FULL=1` for the longer
//! budget. The output path is the first argument (default
//! `BENCH_pipeline.json` in the current directory).
//!
//! Besides wall-clock numbers the export records input sizes, the worker
//! thread count, speedup ratios (parallel vs. sequential dispatch, CSR
//! arena vs. the legacy nested-`Vec` reference, paired vs. per-stream
//! FFT, fused vs. seed feature extraction), a `feature_fusion` section
//! with pass counts and fusion-related counters, an `epochs` section
//! (cold vs. warm-started epoch latency and incremental CSR fold vs.
//! from-scratch rebuild), a `pool` section (persistent-pool vs scoped
//! dispatch cost and the scratch-arena hit rate), obs counters from one
//! instrumented pass, and a
//! framework bit-identity check across thread counts. The
//! `parallel_speedups_meaningful` flag records whether the host had more
//! than one core; on single-core hosts the parallel ratios are context,
//! not claims, and `bench_check` skips its speedup assertions.
//!
//! Run with: `cargo run -p srtd-bench --release --bin bench_pipeline`

use srtd_cluster::{KMeans, KMeansConfig};
use srtd_core::aggregate::initial_group_weight;
use srtd_core::grouping::blocking;
use srtd_core::{
    AccountGrouping, AgTr, AgTs, GroupAggregation, Grouping, PerfectGrouping, SybilResistantTd,
};
use srtd_runtime::bench::{black_box, Bench, BenchConfig, BenchStats};
use srtd_runtime::json::{Json, ToJson};
use srtd_runtime::obs;
use srtd_runtime::parallel::{parallel_map, set_backend, set_max_threads, Backend};
use srtd_runtime::pool;
use srtd_runtime::rng::{Rng, SeedableRng, StdRng};
use srtd_sensing::{ScaledCampaign, ScaledCampaignConfig};
use srtd_signal::features::standardize;
use srtd_signal::fft::{fft_real, fft_real_pair};
use srtd_signal::{stream_features, stream_features_batch, FeatureConfig};
use srtd_timeseries::{Dtw, PrunedPairwise};
use srtd_truth::{max_abs_delta, ConvergenceCriterion, Report, SensingData};
use std::time::{Duration, Instant};

/// Campaign shape: the `exp_large_scale` regime scaled until the
/// framework's parallel gate (64 tasks) is comfortably passed.
const LEGIT: usize = 200;
const ATTACKERS: usize = 2;
const SYBILS_PER_ATTACKER: usize = 20;
const TASKS: usize = 600;
const REPORT_PROB: f64 = 0.25;

/// A deterministic large campaign: 240 accounts in 202 true groups over
/// 600 tasks, ~25% report density, two Sybil attackers pushing -50 dBm.
fn large_campaign(seed: u64) -> (SensingData, Vec<usize>) {
    let accounts = LEGIT + ATTACKERS * SYBILS_PER_ATTACKER;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = SensingData::new(TASKS);
    let mut labels = Vec::with_capacity(accounts);
    for a in 0..accounts {
        let owner = if a < LEGIT {
            a
        } else {
            LEGIT + (a - LEGIT) / SYBILS_PER_ATTACKER
        };
        labels.push(owner);
        for t in 0..TASKS {
            if rng.gen_range(0f64..1.0) >= REPORT_PROB {
                continue;
            }
            let truth = (t as f64 * 0.37).sin() * 20.0 - 70.0;
            let value = if owner >= LEGIT {
                -50.0
            } else {
                truth + rng.gen_range(-3f64..3.0)
            };
            data.add_report(a, t, value, t as f64 * 10.0 + a as f64 * 0.01);
        }
    }
    (data, labels)
}

/// The pre-CSR reference implementation of Algorithm 2's data-grouping
/// and iteration stages: allocating `reports_for_task` snapshots, one
/// bucket `Vec` per group per task, sequential loss/truth loops. Kept
/// here (not in the library) purely as the bench's legacy baseline.
fn legacy_discover(data: &SensingData, grouping: &Grouping) -> (Vec<Option<f64>>, Vec<f64>, usize) {
    let m = data.num_tasks();
    let l = grouping.len();
    let mut per_task: Vec<Vec<(usize, f64, f64)>> = Vec::with_capacity(m);
    for j in 0..m {
        let reports = data.reports_for_task(j);
        if reports.is_empty() {
            per_task.push(Vec::new());
            continue;
        }
        let reporters = reports.len();
        let mut by_group: Vec<Vec<f64>> = vec![Vec::new(); l];
        for r in &reports {
            by_group[grouping.group_of(r.account)].push(r.value);
        }
        per_task.push(
            by_group
                .iter()
                .enumerate()
                .filter(|(_, vals)| !vals.is_empty())
                .map(|(k, vals)| {
                    (
                        k,
                        GroupAggregation::default().aggregate(vals),
                        initial_group_weight(vals.len(), reporters),
                    )
                })
                .collect(),
        );
    }
    let estimate =
        |entries: &[(usize, f64, f64)], weight_of: &dyn Fn(usize, f64) -> f64| -> Option<f64> {
            let mut num = 0.0;
            let mut den = 0.0;
            let mut sum = 0.0;
            let mut count = 0usize;
            for &(k, v, seed) in entries {
                let w = weight_of(k, seed);
                num += w * v;
                den += w;
                sum += v;
                count += 1;
            }
            if count == 0 {
                None
            } else if den > 0.0 {
                Some(num / den)
            } else {
                Some(sum / count as f64)
            }
        };
    let mut truths: Vec<Option<f64>> = per_task
        .iter()
        .map(|entries| estimate(entries, &|_, seed| seed))
        .collect();
    let scales: Vec<f64> = per_task
        .iter()
        .map(|entries| {
            if entries.len() < 2 {
                return 1.0;
            }
            let mean = entries.iter().map(|&(_, v, _)| v).sum::<f64>() / entries.len() as f64;
            let var = entries
                .iter()
                .map(|&(_, v, _)| (v - mean) * (v - mean))
                .sum::<f64>()
                / entries.len() as f64;
            var.sqrt().max(1e-9)
        })
        .collect();
    let criterion = ConvergenceCriterion::default();
    let mut weights = vec![1.0f64; l];
    let mut iterations = 0;
    for iter in 0..criterion.max_iterations {
        iterations = iter + 1;
        let mut losses = vec![0.0f64; l];
        for (j, entries) in per_task.iter().enumerate() {
            let Some(truth) = truths[j] else { continue };
            for &(k, value, _) in entries {
                let e = (value - truth) / scales[j];
                losses[k] += e * e;
            }
        }
        let total: f64 = losses.iter().sum();
        for (w, &loss) in weights.iter_mut().zip(&losses) {
            *w = (total.max(1e-12) / loss.max(1e-12)).ln().max(0.0);
        }
        if weights.iter().all(|&w| w == 0.0) {
            weights.fill(1.0);
        }
        let next: Vec<Option<f64>> = per_task
            .iter()
            .map(|entries| estimate(entries, &|k, _| weights[k]))
            .collect();
        let delta = max_abs_delta(&truths, &next);
        truths = next;
        if delta <= criterion.tolerance {
            break;
        }
    }
    (truths, weights, iterations)
}

/// The pre-fusion Table-II extraction path: per-call cosine windowing,
/// one FFT per stream, and one or more passes per feature — the exact
/// shape the fused kernels replaced. Kept in the bench (like
/// [`legacy_discover`]) so the fused-vs-seed speedup is measured on this
/// host rather than asserted from history.
mod seed_features {
    use srtd_signal::fft::fft_real;
    use srtd_signal::spectral::{
        brightness, rolloff, roughness, SpectralFeatures, ROLLOFF_FRACTION,
    };
    use srtd_signal::stats;
    use srtd_signal::temporal::{non_negative_fraction, zero_crossing_rate, TemporalFeatures};
    use srtd_signal::{FeatureConfig, Spectrum, StreamFeatures};

    fn windowed(signal: &[f64], config: &FeatureConfig) -> Vec<f64> {
        let n = signal.len();
        signal
            .iter()
            .enumerate()
            .map(|(i, &x)| x * config.window.coefficient(i, n))
            .collect()
    }

    fn temporal(signal: &[f64]) -> TemporalFeatures {
        let (max, min) = if signal.is_empty() {
            (0.0, 0.0)
        } else {
            (
                signal.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                signal.iter().cloned().fold(f64::INFINITY, f64::min),
            )
        };
        TemporalFeatures {
            mean: stats::mean(signal),
            std_dev: stats::std_dev(signal),
            skewness: stats::skewness(signal),
            kurtosis: stats::kurtosis(signal),
            rms: stats::rms(signal),
            max,
            min,
            zcr: zero_crossing_rate(signal),
            non_negative_fraction: non_negative_fraction(signal),
        }
    }

    fn flatness(body: &[f64]) -> f64 {
        let n = body.len() as f64;
        let arith = body.iter().sum::<f64>() / n;
        if arith <= 0.0 || body.iter().any(|&m| m <= 0.0) {
            return 0.0;
        }
        let log_geo = body.iter().map(|&m| m.ln()).sum::<f64>() / n;
        (log_geo.exp() / arith).clamp(0.0, 1.0)
    }

    fn irregularity(body: &[f64]) -> f64 {
        let denom: f64 = body.iter().map(|&m| m * m).sum();
        if denom <= 0.0 || body.len() < 2 {
            return 0.0;
        }
        let num: f64 = body.windows(2).map(|w| (w[0] - w[1]).powi(2)).sum();
        num / denom
    }

    fn entropy(body: &[f64], total: f64) -> f64 {
        if body.len() < 2 {
            return 0.0;
        }
        let h: f64 = body
            .iter()
            .filter(|&&m| m > 0.0)
            .map(|&m| {
                let p = m / total;
                -p * p.ln()
            })
            .sum();
        (h / (body.len() as f64).ln()).clamp(0.0, 1.0)
    }

    fn spectral(spectrum: &Spectrum, cutoff_hz: f64) -> SpectralFeatures {
        let mags = spectrum.magnitudes();
        let body = if mags.len() > 1 { &mags[1..] } else { &[][..] };
        let total: f64 = body.iter().sum();
        if body.is_empty() || total <= 0.0 {
            return SpectralFeatures::default();
        }
        let freq = |k: usize| spectrum.frequency(k + 1);
        let centroid: f64 = body
            .iter()
            .enumerate()
            .map(|(k, &m)| freq(k) * m)
            .sum::<f64>()
            / total;
        let var: f64 = body
            .iter()
            .enumerate()
            .map(|(k, &m)| (freq(k) - centroid).powi(2) * m)
            .sum::<f64>()
            / total;
        let spread = var.sqrt();
        let (skewness, kurtosis) = if spread > 0.0 {
            let m3: f64 = body
                .iter()
                .enumerate()
                .map(|(k, &m)| (freq(k) - centroid).powi(3) * m)
                .sum::<f64>()
                / total;
            let m4: f64 = body
                .iter()
                .enumerate()
                .map(|(k, &m)| (freq(k) - centroid).powi(4) * m)
                .sum::<f64>()
                / total;
            (m3 / spread.powi(3), m4 / spread.powi(4))
        } else {
            (0.0, 0.0)
        };
        SpectralFeatures {
            centroid,
            spread,
            skewness,
            kurtosis,
            flatness: flatness(body),
            irregularity: irregularity(body),
            entropy: entropy(body, total),
            rolloff: rolloff(spectrum, ROLLOFF_FRACTION),
            brightness: brightness(spectrum, cutoff_hz),
            rms: stats::rms(body),
            roughness: roughness(spectrum),
        }
    }

    pub fn extract(signal: &[f64], config: &FeatureConfig) -> StreamFeatures {
        let spectrum = Spectrum::from_fft(&fft_real(&windowed(signal, config)), config.sample_rate);
        StreamFeatures {
            temporal: temporal(signal),
            spectral: spectral(&spectrum, config.brightness_cutoff_hz),
        }
    }
}

fn result_bits(truths: &[Option<f64>], weights: &[f64], trace: &[f64]) -> Vec<u64> {
    truths
        .iter()
        .map(|t| t.map_or(u64::MAX, f64::to_bits))
        .chain(weights.iter().map(|w| w.to_bits()))
        .chain(trace.iter().map(|d| d.to_bits()))
        .collect()
}

fn stats_json(group: &str, name: &str, stats: BenchStats, params: Vec<(&str, Json)>) -> Json {
    let mut fields = vec![
        ("group", Json::str(group)),
        ("name", Json::str(name)),
        ("median_ns", stats.median_ns.to_json()),
        ("min_ns", stats.min_ns.to_json()),
        ("max_ns", stats.max_ns.to_json()),
        ("batch", stats.batch.to_json()),
    ];
    fields.extend(params);
    Json::obj(fields)
}

fn main() {
    let quick = !matches!(std::env::var("SRTD_BENCH_FULL"), Ok(v) if v == "1");
    let config = if quick {
        BenchConfig::quick()
    } else {
        BenchConfig::default()
    };
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let threads_available = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut cases: Vec<Json> = Vec::new();

    // ---- Framework (Algorithm 2) on the large-scale campaign ----
    let (data, labels) = large_campaign(0);
    let grouping = PerfectGrouping::new(labels).group(&data, &[]);
    let framework = SybilResistantTd::new(PerfectGrouping::new(vec![]));
    let num_reports = data.reports().len();
    let num_groups = grouping.len();

    // Byte-identity across worker counts, asserted before timing.
    set_max_threads(1);
    let r1 = framework.discover_with_grouping(&data, grouping.clone());
    set_max_threads(4);
    let r4 = framework.discover_with_grouping(&data, grouping.clone());
    set_max_threads(0);
    let bit_identical = result_bits(&r1.truths, &r1.group_weights, &r1.convergence_trace)
        == result_bits(&r4.truths, &r4.group_weights, &r4.convergence_trace);
    assert!(
        bit_identical,
        "framework output must be byte-identical at 1 vs 4 worker threads"
    );

    // Legacy reference must agree numerically (different float association
    // allows ulp-level drift, nothing more).
    let (legacy_truths, _, _) = legacy_discover(&data, &grouping);
    for (a, b) in r1.truths.iter().zip(&legacy_truths) {
        match (a, b) {
            (Some(x), Some(y)) => assert!(
                (x - y).abs() < 1e-6 * (1.0 + x.abs()),
                "CSR vs legacy drifted: {x} vs {y}"
            ),
            (None, None) => {}
            _ => panic!("CSR vs legacy coverage mismatch"),
        }
    }

    let mut group = Bench::with_config("pipeline", config);
    let framework_params = vec![
        ("tasks", TASKS.to_json()),
        (
            "accounts",
            (LEGIT + ATTACKERS * SYBILS_PER_ATTACKER).to_json(),
        ),
        ("groups", num_groups.to_json()),
        ("reports", num_reports.to_json()),
    ];

    set_max_threads(1);
    let fw_seq = group.run("framework/large/seq", || {
        framework.discover_with_grouping(black_box(&data), grouping.clone())
    });
    set_max_threads(4);
    let fw_par4 = group.run("framework/large/par4", || {
        framework.discover_with_grouping(black_box(&data), grouping.clone())
    });
    set_max_threads(0);
    let fw_legacy = group.run("framework/large/legacy", || {
        legacy_discover(black_box(&data), black_box(&grouping))
    });
    cases.push(stats_json(
        "framework",
        "large/seq",
        fw_seq,
        framework_params.clone(),
    ));
    cases.push(stats_json(
        "framework",
        "large/par4",
        fw_par4,
        framework_params.clone(),
    ));
    cases.push(stats_json(
        "framework",
        "large/legacy",
        fw_legacy,
        framework_params,
    ));

    // ---- FFT: per-stream vs two-for-one, single vs batched features ----
    let n_fft = 1024usize;
    let x: Vec<f64> = (0..n_fft).map(|i| (i as f64 * 0.37).sin()).collect();
    let y: Vec<f64> = (0..n_fft).map(|i| (i as f64 * 0.91).cos()).collect();
    let fft_single = group.run("fft/two_singles/1024", || {
        (fft_real(black_box(&x)), fft_real(black_box(&y)))
    });
    let fft_paired = group.run("fft/real_pair/1024", || {
        fft_real_pair(black_box(&x), black_box(&y))
    });
    cases.push(stats_json(
        "fft",
        "two_singles/1024",
        fft_single,
        vec![("n", n_fft.to_json())],
    ));
    cases.push(stats_json(
        "fft",
        "real_pair/1024",
        fft_paired,
        vec![("n", n_fft.to_json())],
    ));

    let streams: Vec<Vec<f64>> = (0..4)
        .map(|s| {
            (0..600)
                .map(|i| (i as f64 * (0.21 + s as f64 * 0.13)).sin() * 2.0 + 9.81)
                .collect()
        })
        .collect();
    let feat_cfg = FeatureConfig::new(100.0);

    // The seed reference must agree with the fused library path before
    // either is timed (the fused kernels preserve accumulation order, so
    // the agreement is in practice bit-exact; 1e-9 is the contract).
    for s in &streams {
        let fused = stream_features(s, &feat_cfg).to_vec();
        let seeded = seed_features::extract(s, &feat_cfg).to_vec();
        for (a, b) in fused.iter().zip(&seeded) {
            assert!(
                (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                "fused vs seed extraction drifted: {a} vs {b}"
            );
        }
    }

    let feat_seed = group.run("features/seed/4x600", || {
        streams
            .iter()
            .map(|s| seed_features::extract(black_box(s), &feat_cfg))
            .collect::<Vec<_>>()
    });
    let feat_single = group.run("features/per_stream/4x600", || {
        streams
            .iter()
            .map(|s| stream_features(black_box(s), &feat_cfg))
            .collect::<Vec<_>>()
    });
    let feat_batch = group.run("features/fused/4x600", || {
        stream_features_batch(black_box(&streams), &feat_cfg)
    });
    let feat_params = vec![("streams", 4usize.to_json()), ("len", 600usize.to_json())];
    cases.push(stats_json(
        "features",
        "seed/4x600",
        feat_seed,
        feat_params.clone(),
    ));
    cases.push(stats_json(
        "features",
        "per_stream/4x600",
        feat_single,
        feat_params.clone(),
    ));
    cases.push(stats_json(
        "features",
        "fused/4x600",
        feat_batch,
        feat_params,
    ));

    // ---- Pool dispatch: persistent workers vs scoped spawn-per-call ----
    // Same items, same deterministic chunking, same closure — the only
    // difference is how workers come to exist (unpark vs spawn), so the
    // median gap is pure thread-management overhead. Outputs are asserted
    // bit-identical before either path is timed. The scratch counters
    // around a fused feature pass record how often the per-thread FFT
    // arena checkout found warm buffers; warm arenas across batches are
    // the reason the pool is persistent at all.
    let dispatch_items: Vec<f64> = (0..256).map(|i| i as f64 * 0.5).collect();
    let dispatch_job = |&x: &f64| (x * 1.000_001 + 0.25).sqrt();
    set_max_threads(4);
    set_backend(Backend::Scoped);
    let out_scoped = parallel_map(&dispatch_items, dispatch_job);
    let disp_scoped = group.run("pool/dispatch_scoped/4x256", || {
        parallel_map(black_box(&dispatch_items), dispatch_job)
    });
    set_backend(Backend::Pool);
    let out_pool = parallel_map(&dispatch_items, dispatch_job);
    assert!(
        out_pool
            .iter()
            .zip(&out_scoped)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "pool and scoped dispatch must produce identical bits"
    );
    let disp_pool = group.run("pool/dispatch_pool/4x256", || {
        parallel_map(black_box(&dispatch_items), dispatch_job)
    });
    let scratch_before = pool::stats();
    for _ in 0..8 {
        black_box(stream_features_batch(&streams, &feat_cfg));
    }
    let scratch_after = pool::stats();
    set_max_threads(0);
    let scratch_checkouts = scratch_after.scratch_checkouts - scratch_before.scratch_checkouts;
    let scratch_reuses = scratch_after.scratch_reuses - scratch_before.scratch_reuses;
    let pool_params = vec![
        ("items", dispatch_items.len().to_json()),
        ("threads", 4usize.to_json()),
    ];
    cases.push(stats_json(
        "pool",
        "dispatch_scoped/4x256",
        disp_scoped,
        pool_params.clone(),
    ));
    cases.push(stats_json(
        "pool",
        "dispatch_pool/4x256",
        disp_pool,
        pool_params,
    ));

    // ---- DTW ----
    let dtw_n = 200usize;
    let a: Vec<f64> = (0..dtw_n).map(|i| (i as f64 * 0.11).sin() * 5.0).collect();
    let b: Vec<f64> = (0..dtw_n)
        .map(|i| (i as f64 * 0.11 + 0.8).sin() * 5.0)
        .collect();
    let dtw_full = group.run("dtw/full/200", || {
        Dtw::new().distance(black_box(&a), black_box(&b))
    });
    let dtw_band = group.run("dtw/band16/200", || {
        Dtw::new()
            .with_band(16)
            .distance(black_box(&a), black_box(&b))
    });
    cases.push(stats_json(
        "dtw",
        "full/200",
        dtw_full,
        vec![("n", dtw_n.to_json())],
    ));
    cases.push(stats_json(
        "dtw",
        "band16/200",
        dtw_band,
        vec![("n", dtw_n.to_json()), ("band", 16usize.to_json())],
    ));

    // ---- AG-TR pairwise pruning on the large campaign ----
    // The pruned and full dissimilarity paths must produce the same
    // grouping (this is the bench-side guard; the root equivalence test
    // suite is the exhaustive one), and pruning must have skipped at
    // least one of the n(n−1)/2 full DTW evaluations to count as a win.
    let ag_pruned = AgTr::default();
    let ag_full = AgTr::default().with_pruning(false);
    let g_pruned = ag_pruned.group(&data, &[]);
    let g_full = ag_full.group(&data, &[]);
    let grouping_identical = g_pruned.groups() == g_full.groups();
    assert!(
        grouping_identical,
        "pruned AG-TR grouping must match the full-matrix path"
    );
    let trajectories = ag_pruned.trajectories(&data);
    let (pruned_matrix, prune_stats) =
        PrunedPairwise::new(ag_pruned.phi()).matrix2_with_stats(&trajectories);
    assert!(
        prune_stats.full_evals < prune_stats.pairs,
        "pruning must skip full DTW evaluations on the large campaign \
         ({} of {} ran to completion)",
        prune_stats.full_evals,
        prune_stats.pairs,
    );
    let full_matrix = ag_full.dissimilarity_matrix(&data);
    for (i, row) in pruned_matrix.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            if v.is_finite() {
                assert_eq!(
                    v.to_bits(),
                    full_matrix[i][j].to_bits(),
                    "kept entry ({i},{j}) must be bit-identical"
                );
            } else if i != j {
                assert!(
                    full_matrix[i][j] >= ag_pruned.phi(),
                    "pruned a below-φ pair ({i},{j})"
                );
            }
        }
    }

    // The full matrix costs ~hundreds of ms per call, so the pruning
    // comparison gets its own smaller quick-mode budget.
    let prune_cfg = if quick {
        BenchConfig {
            warmup_time: Duration::from_millis(10),
            sample_time: Duration::from_millis(5),
            samples: 3,
        }
    } else {
        BenchConfig::default()
    };
    let mut prune_group = Bench::with_config("dtw_prune", prune_cfg);
    let prune_params = vec![
        (
            "accounts",
            (LEGIT + ATTACKERS * SYBILS_PER_ATTACKER).to_json(),
        ),
        ("pairs", prune_stats.pairs.to_json()),
    ];
    let matrix_full = prune_group.run("agtr_matrix/full", || {
        ag_full.dissimilarity_matrix(black_box(&data))
    });
    let matrix_pruned = prune_group.run("agtr_matrix/pruned", || {
        ag_pruned.dissimilarity_matrix(black_box(&data))
    });
    cases.push(stats_json(
        "dtw_prune",
        "agtr_matrix/full",
        matrix_full,
        prune_params.clone(),
    ));
    cases.push(stats_json(
        "dtw_prune",
        "agtr_matrix/pruned",
        matrix_pruned,
        prune_params,
    ));

    // Per-signal candidate counts on the same campaign: how many of the
    // n(n−1)/2 pairs each blocked signal actually visits (the honesty
    // columns of the dtw_prune export).
    let task_sets: Vec<Vec<usize>> = (0..data.num_accounts()).map(|a| data.tasks_of(a)).collect();
    let ts_block = blocking::ts_candidates(&task_sets, data.num_tasks(), None);
    let tr_block = blocking::tr_candidates(&trajectories, ag_pruned.phi(), None);

    // ---- Grouping at scale: a 100k-account campaign, all three signals ----
    // The sub-quadratic claim measured, not asserted: blocked candidate
    // generation must leave ≥ 99% of the n(n−1)/2 pairs unvisited while
    // grouping still runs end to end. One timed pass per signal — at this
    // size the wall-clock is far above timer noise, and a Bench loop would
    // blow the quick-mode budget `scripts/verify.sh` runs under.
    let scale_cfg = ScaledCampaignConfig::new(100_000).with_seed(42);
    let t_gen = Instant::now();
    let campaign = ScaledCampaign::generate(&scale_cfg);
    let scale_generate_ms = t_gen.elapsed().as_secs_f64() * 1e3;
    let sn = campaign.num_accounts();
    let scale_task_sets: Vec<Vec<usize>> = (0..sn).map(|a| campaign.data.tasks_of(a)).collect();
    let ts_scale = blocking::ts_candidates(&scale_task_sets, campaign.data.num_tasks(), None);
    // Eq. 6 scales as T²/m for identical task sets, so the worked-example
    // ρ = 1 would reject even perfect replicas at m = 2000 (6²/2000 ≈
    // 0.018): the threshold must scale with the campaign.
    let ag_ts_scale = AgTs::new(0.01);
    let t_ts = Instant::now();
    let g_ts_scale = ag_ts_scale.group(&campaign.data, &[]);
    let scale_ts_ms = t_ts.elapsed().as_secs_f64() * 1e3;
    let ag_tr_scale = AgTr::default();
    let tr_scale = blocking::tr_candidates(
        &ag_tr_scale.trajectories(&campaign.data),
        ag_tr_scale.phi(),
        None,
    );
    let t_tr = Instant::now();
    let g_tr_scale = ag_tr_scale.group(&campaign.data, &[]);
    let scale_tr_ms = t_tr.elapsed().as_secs_f64() * 1e3;
    let t_fp = Instant::now();
    let scale_points = standardize(&campaign.fingerprints).0;
    let fp_scale = KMeans::new(
        KMeansConfig::new(campaign.num_devices)
            .with_restarts(1)
            .with_max_iterations(25),
    )
    .fit(&scale_points);
    let scale_fp_ms = t_fp.elapsed().as_secs_f64() * 1e3;
    assert_eq!(fp_scale.assignments.len(), sn);
    // Both pairwise signals must group the Sybil rings: every ring merges
    // its five members, so each signal loses at least 4 accounts per ring
    // relative to all-singletons.
    let rings = scale_cfg.num_rings;
    assert!(
        g_ts_scale.len() <= sn - 4 * rings && g_tr_scale.len() <= sn - 4 * rings,
        "scaled grouping missed Sybil rings: TS {} TR {} groups of {sn}",
        g_ts_scale.len(),
        g_tr_scale.len(),
    );
    let scale_pairs_total = ts_scale.total_pairs + tr_scale.total_pairs;
    let scale_pairs_visited = (ts_scale.pairs.len() + tr_scale.pairs.len()) as u64;
    let scale_skip_rate = 1.0 - scale_pairs_visited as f64 / scale_pairs_total as f64;
    assert!(
        scale_skip_rate >= 0.99,
        "blocking must skip ≥ 99% of pairwise work at 100k accounts \
         (visited {scale_pairs_visited} of {scale_pairs_total})"
    );

    // ---- Epochs: cold vs warm-start epoch latency, fold vs rebuild ----
    // The steady-state epoch contract: re-running Algorithm 2 on
    // unchanged data seeded with the previous epoch's weights converges
    // in 1 iteration instead of ~5, so a warm epoch pays one truth/weight
    // round plus the arena build.
    let cold_epoch = framework.discover_with_grouping(&data, grouping.clone());
    let warm_epoch = framework.discover_with_grouping_seeded(
        &data,
        grouping.clone(),
        Some(&cold_epoch.group_weights),
    );
    assert!(warm_epoch.warm_started, "warm seed must be accepted");
    assert!(
        warm_epoch.iterations <= 2 && warm_epoch.iterations < cold_epoch.iterations,
        "warm epoch took {} iterations vs {} cold",
        warm_epoch.iterations,
        cold_epoch.iterations
    );
    let ep_cold = group.run("epochs/cold", || {
        framework.discover_with_grouping(black_box(&data), grouping.clone())
    });
    let ep_warm = group.run("epochs/warm", || {
        framework.discover_with_grouping_seeded(
            black_box(&data),
            grouping.clone(),
            Some(&cold_epoch.group_weights),
        )
    });
    let epoch_params = vec![
        ("cold_iterations", cold_epoch.iterations.to_json()),
        ("warm_iterations", warm_epoch.iterations.to_json()),
    ];
    cases.push(stats_json("epochs", "cold", ep_cold, epoch_params.clone()));
    cases.push(stats_json("epochs", "warm", ep_warm, epoch_params));

    // Data-plane half of the epoch story: admitting a batch of new
    // reports by folding into the warm CSR indexes vs the pre-incremental
    // world (invalidate, re-index everything from scratch on next read).
    // `data`'s indexes are warm from the runs above; `cold_base` holds the
    // same reports with its caches never touched, so the accessor pays the
    // full counting-sort build after the fold.
    let accounts = LEGIT + ATTACKERS * SYBILS_PER_ATTACKER;
    let new_accounts = 10usize;
    let mut batch_rng = StdRng::seed_from_u64(99);
    let mut batch: Vec<Report> = Vec::new();
    for a in accounts..accounts + new_accounts {
        for t in 0..TASKS {
            if batch_rng.gen_range(0f64..1.0) < REPORT_PROB {
                batch.push(Report {
                    account: a,
                    task: t,
                    value: -50.0,
                    timestamp: t as f64 * 10.0 + a as f64 * 0.01,
                });
            }
        }
    }
    let (cold_base, _) = large_campaign(0);
    let touch = |d: &SensingData| {
        d.task_report_indices(0).len() + d.account_report_indices(accounts + new_accounts - 1).len()
    };
    let fold_warm = group.run("epochs/fold_incremental", || {
        let mut d = data.clone();
        d.reserve_accounts(accounts + new_accounts);
        d.fold_batch(black_box(&batch));
        black_box(touch(&d))
    });
    let fold_rebuild = group.run("epochs/fold_rebuild", || {
        let mut d = cold_base.clone();
        d.reserve_accounts(accounts + new_accounts);
        d.fold_batch(black_box(&batch));
        black_box(touch(&d))
    });
    let fold_params = vec![
        ("batch_reports", batch.len().to_json()),
        ("base_reports", num_reports.to_json()),
    ];
    cases.push(stats_json(
        "epochs",
        "fold_incremental",
        fold_warm,
        fold_params.clone(),
    ));
    cases.push(stats_json(
        "epochs",
        "fold_rebuild",
        fold_rebuild,
        fold_params,
    ));

    // ---- Obs counters from one instrumented pass over the same paths ----
    obs::set_enabled(true);
    obs::reset();
    let _ = framework.discover_with_grouping(&data, grouping.clone());
    let _ = stream_features_batch(&streams, &feat_cfg);
    let _ = Dtw::new().distance(&a, &b);
    let _ = ag_pruned.dissimilarity_matrix(&data);
    let report = obs::snapshot();
    obs::set_enabled(false);
    let counters: Vec<(String, u64)> = report.counters;
    let counter = |name: &str| -> u64 {
        counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };

    // ---- Obs disabled-path overhead ----
    // Every obs entry point bails on one relaxed atomic load while
    // collection is off; these loops pin that the instrumented hot paths
    // stay effectively free. Batches of OBS_OPS calls per sample make the
    // per-op cost resolvable at sub-ns scale.
    const OBS_OPS: usize = 1000;
    assert!(
        !obs::enabled(),
        "obs must be disabled for the overhead measurement"
    );
    let obs_counter = group.run("obs/counter_add_disabled/1000", || {
        for i in 0..OBS_OPS {
            obs::counter_add(black_box("bench.obs.counter"), black_box(i as u64));
        }
    });
    let obs_span = group.run("obs/span_disabled/1000", || {
        for _ in 0..OBS_OPS {
            drop(obs::span(black_box("bench.obs.span")));
        }
    });
    let obs_observe = group.run("obs/observe_disabled/1000", || {
        for i in 0..OBS_OPS {
            obs::observe(black_box("bench.obs.hist"), black_box(i as f64));
        }
    });
    let obs_params = vec![("ops", OBS_OPS.to_json())];
    cases.push(stats_json(
        "obs",
        "counter_add_disabled/1000",
        obs_counter,
        obs_params.clone(),
    ));
    cases.push(stats_json(
        "obs",
        "span_disabled/1000",
        obs_span,
        obs_params.clone(),
    ));
    cases.push(stats_json(
        "obs",
        "observe_disabled/1000",
        obs_observe,
        obs_params,
    ));

    let doc = Json::obj([
        ("schema", Json::str("srtd-bench-pipeline-v7")),
        ("quick", quick.to_json()),
        ("threads_available", threads_available.to_json()),
        (
            "input",
            Json::obj([
                ("tasks", TASKS.to_json()),
                (
                    "accounts",
                    (LEGIT + ATTACKERS * SYBILS_PER_ATTACKER).to_json(),
                ),
                ("groups", num_groups.to_json()),
                ("reports", num_reports.to_json()),
                ("fft_n", n_fft.to_json()),
                ("dtw_n", dtw_n.to_json()),
            ]),
        ),
        ("cases", Json::arr(cases)),
        (
            "speedups",
            Json::obj([
                // On a single-core host the par4 dispatch can only add
                // overhead; bench_check gates its speedup assertion on
                // this flag so the number is context, not a claim.
                (
                    "parallel_speedups_meaningful",
                    (threads_available > 1).to_json(),
                ),
                (
                    "framework_par4_vs_seq",
                    (fw_seq.median_ns / fw_par4.median_ns).to_json(),
                ),
                (
                    "epoch_warm_vs_cold",
                    (ep_cold.median_ns / ep_warm.median_ns).to_json(),
                ),
                (
                    "framework_csr_seq_vs_legacy",
                    (fw_legacy.median_ns / fw_seq.median_ns).to_json(),
                ),
                (
                    "fft_pair_vs_two_singles",
                    (fft_single.median_ns / fft_paired.median_ns).to_json(),
                ),
                (
                    "features_per_stream_vs_seed",
                    (feat_seed.median_ns / feat_single.median_ns).to_json(),
                ),
                (
                    "features_fused_vs_seed",
                    (feat_seed.median_ns / feat_batch.median_ns).to_json(),
                ),
                (
                    "features_fused_vs_per_stream",
                    (feat_single.median_ns / feat_batch.median_ns).to_json(),
                ),
                (
                    "pool_dispatch_vs_scoped",
                    (disp_scoped.median_ns / disp_pool.median_ns).to_json(),
                ),
            ]),
        ),
        (
            "pool",
            Json::obj([
                ("dispatch_items", dispatch_items.len().to_json()),
                ("dispatch_threads", 4usize.to_json()),
                ("dispatch_scoped_median_ns", disp_scoped.median_ns.to_json()),
                ("dispatch_pool_median_ns", disp_pool.median_ns.to_json()),
                (
                    "dispatch_pool_vs_scoped",
                    (disp_scoped.median_ns / disp_pool.median_ns).to_json(),
                ),
                ("jobs", scratch_after.jobs.to_json()),
                ("wakeups", scratch_after.wakeups.to_json()),
                ("scratch_checkouts", scratch_checkouts.to_json()),
                ("scratch_reuses", scratch_reuses.to_json()),
                (
                    "scratch_hit_rate",
                    (scratch_reuses as f64 / scratch_checkouts.max(1) as f64).to_json(),
                ),
                (
                    "note",
                    Json::str(
                        "dispatch benches force 4 workers over 256 items so the \
                         pool-vs-scoped gap isolates unpark-vs-spawn cost; scratch \
                         counters cover 8 fused feature passes after warmup, so the \
                         hit rate shows per-thread FFT arenas surviving across \
                         batches",
                    ),
                ),
            ]),
        ),
        (
            "epochs",
            Json::obj([
                ("cold_iterations", cold_epoch.iterations.to_json()),
                ("warm_iterations", warm_epoch.iterations.to_json()),
                ("warm_started", warm_epoch.warm_started.to_json()),
                ("cold_median_ns", ep_cold.median_ns.to_json()),
                ("warm_median_ns", ep_warm.median_ns.to_json()),
                (
                    "warm_speedup",
                    (ep_cold.median_ns / ep_warm.median_ns).to_json(),
                ),
                ("fold_batch_reports", batch.len().to_json()),
                ("fold_median_ns", fold_warm.median_ns.to_json()),
                ("rebuild_median_ns", fold_rebuild.median_ns.to_json()),
                (
                    "fold_speedup_vs_rebuild",
                    (fold_rebuild.median_ns / fold_warm.median_ns).to_json(),
                ),
            ]),
        ),
        (
            "feature_fusion",
            Json::obj([
                ("passes_before_per_stream", 24usize.to_json()),
                ("passes_after_per_stream", 4usize.to_json()),
                ("seed_median_ns", feat_seed.median_ns.to_json()),
                ("per_stream_median_ns", feat_single.median_ns.to_json()),
                ("fused_median_ns", feat_batch.median_ns.to_json()),
                (
                    "fused_vs_seed_speedup",
                    (feat_seed.median_ns / feat_batch.median_ns).to_json(),
                ),
                (
                    "window_cache_hits",
                    counter("signal.window.cache_hits").to_json(),
                ),
                (
                    "window_cache_misses",
                    counter("signal.window.cache_misses").to_json(),
                ),
                (
                    "fused_calls",
                    counter("signal.features.fused_calls").to_json(),
                ),
                (
                    "peak_pairs",
                    counter("signal.spectral.peak_pairs").to_json(),
                ),
                (
                    "note",
                    Json::str(
                        "single-core container: medians measure the algorithmic win \
                         (fewer passes, cached windows, paired FFTs), not parallel scaling",
                    ),
                ),
            ]),
        ),
        (
            "determinism",
            Json::obj([(
                "framework_bit_identical_threads_1_vs_4",
                bit_identical.to_json(),
            )]),
        ),
        (
            "dtw_prune",
            Json::obj([
                (
                    "accounts",
                    (LEGIT + ATTACKERS * SYBILS_PER_ATTACKER).to_json(),
                ),
                ("pairs", prune_stats.pairs.to_json()),
                ("lb_kim_pruned", prune_stats.lb_kim_pruned.to_json()),
                ("lb_keogh_pruned", prune_stats.lb_keogh_pruned.to_json()),
                ("early_abandoned", prune_stats.early_abandoned.to_json()),
                ("full_evals", prune_stats.full_evals.to_json()),
                ("prune_rate", prune_stats.prune_rate().to_json()),
                ("full_median_ns", matrix_full.median_ns.to_json()),
                ("pruned_median_ns", matrix_pruned.median_ns.to_json()),
                (
                    "speedup_vs_full",
                    (matrix_full.median_ns / matrix_pruned.median_ns).to_json(),
                ),
                ("grouping_identical", grouping_identical.to_json()),
                ("ag_ts_pairs_total", ts_block.total_pairs.to_json()),
                ("ag_ts_pairs_candidate", ts_block.pairs.len().to_json()),
                ("ag_tr_pairs_total", tr_block.total_pairs.to_json()),
                ("ag_tr_pairs_candidate", tr_block.pairs.len().to_json()),
            ]),
        ),
        (
            "grouping_scale",
            Json::obj([
                ("accounts", sn.to_json()),
                ("tasks", campaign.data.num_tasks().to_json()),
                ("reports", campaign.data.num_reports().to_json()),
                ("sybil_rings", rings.to_json()),
                ("pairs_total", scale_pairs_total.to_json()),
                ("pairs_visited", scale_pairs_visited.to_json()),
                ("blocking_skip_rate", scale_skip_rate.to_json()),
                ("generate_ms", scale_generate_ms.to_json()),
                (
                    "ag_ts",
                    Json::obj([
                        ("rho", ag_ts_scale.rho().to_json()),
                        ("pairs_total", ts_scale.total_pairs.to_json()),
                        ("pairs_candidate", ts_scale.pairs.len().to_json()),
                        ("buckets", ts_scale.buckets.to_json()),
                        ("groups", g_ts_scale.len().to_json()),
                        ("wall_ms", scale_ts_ms.to_json()),
                    ]),
                ),
                (
                    "ag_tr",
                    Json::obj([
                        ("phi", ag_tr_scale.phi().to_json()),
                        ("pairs_total", tr_scale.total_pairs.to_json()),
                        ("pairs_candidate", tr_scale.pairs.len().to_json()),
                        ("buckets", tr_scale.buckets.to_json()),
                        ("groups", g_tr_scale.len().to_json()),
                        ("wall_ms", scale_tr_ms.to_json()),
                    ]),
                ),
                (
                    "ag_fp",
                    Json::obj([
                        ("k", campaign.num_devices.to_json()),
                        ("pairs_total", fp_scale.pruning.total().to_json()),
                        ("distance_evals", fp_scale.pruning.distance_evals.to_json()),
                        (
                            "skipped_by_norm",
                            fp_scale.pruning.skipped_by_norm.to_json(),
                        ),
                        ("iterations", fp_scale.iterations.to_json()),
                        ("wall_ms", scale_fp_ms.to_json()),
                    ]),
                ),
                (
                    "note",
                    Json::str(
                        "one timed pass per signal on a 100k-account synthetic \
                         campaign; pairwise totals count both blocked signals \
                         (AG-TS + AG-TR), AG-FP is centroid-based so its pair \
                         economics are point–centroid comparisons",
                    ),
                ),
            ]),
        ),
        (
            "obs_overhead",
            Json::obj([
                ("ops_per_sample", OBS_OPS.to_json()),
                (
                    "counter_add_disabled_ns_per_op",
                    (obs_counter.median_ns / OBS_OPS as f64).to_json(),
                ),
                (
                    "span_disabled_ns_per_op",
                    (obs_span.median_ns / OBS_OPS as f64).to_json(),
                ),
                (
                    "observe_disabled_ns_per_op",
                    (obs_observe.median_ns / OBS_OPS as f64).to_json(),
                ),
                (
                    "note",
                    Json::str(
                        "disabled-path cost of the instrumented hot loops: one \
                         relaxed atomic load per call, within measurement noise \
                         of the uninstrumented pre-timeline numbers",
                    ),
                ),
            ]),
        ),
        (
            "counters",
            Json::obj(counters.iter().map(|(k, v)| (k.as_str(), v.to_json()))),
        ),
    ]);
    std::fs::write(&out_path, doc.render() + "\n").expect("write bench JSON");
    println!("\nwrote {out_path}");
}
