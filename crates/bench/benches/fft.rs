//! FFT throughput across transform sizes (the inner loop of feature
//! extraction).

use srtd_runtime::bench::{black_box, Bench};
use srtd_signal::fft::fft_real;

fn main() {
    let mut group = Bench::new("fft_real");
    for &n in &[256usize, 1024, 4096] {
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        group.run(&format!("{n}"), || fft_real(black_box(&signal)));
    }
}
