//! CATD-style confidence-aware truth discovery (Li et al., VLDB 2014).
//!
//! CRH's point-estimate weights are over-confident for *long-tail* sources
//! that reported only a handful of tasks. CATD replaces the weight with the
//! upper bound of a confidence interval on the source's error variance:
//! `w_i = χ²(α/2, n_i) / loss_i`, where `n_i` is the number of claims the
//! source made and `χ²(p, k)` is the chi-square quantile. Sparse sources
//! get systematically discounted.

use crate::convergence::ConvergenceCriterion;
use crate::data::SensingData;
use crate::traits::{TruthDiscovery, TruthDiscoveryResult};

/// CATD-style truth discovery.
///
/// # Examples
///
/// ```
/// use srtd_truth::{Catd, SensingData, TruthDiscovery};
///
/// let mut data = SensingData::new(1);
/// data.add_report(0, 0, 1.0, 0.0);
/// data.add_report(1, 0, 1.1, 0.0);
/// let result = Catd::default().discover(&data);
/// assert!(result.truths[0].is_some());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Catd {
    convergence: ConvergenceCriterion,
    /// Significance level of the confidence interval (the paper's
    /// recommended `α = 0.05`).
    alpha: f64,
}

impl Default for Catd {
    fn default() -> Self {
        Self {
            convergence: ConvergenceCriterion::default(),
            alpha: 0.05,
        }
    }
}

impl Catd {
    /// Creates a CATD instance.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1)`.
    pub fn new(convergence: ConvergenceCriterion, alpha: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&alpha) && alpha > 0.0,
            "alpha must be in (0,1)"
        );
        Self { convergence, alpha }
    }
}

/// Chi-square quantile via the Wilson–Hilferty cube approximation.
///
/// Accurate to a few percent for `k >= 1`, which is all the weighting
/// needs (only relative magnitudes matter).
fn chi_square_quantile(p: f64, k: f64) -> f64 {
    let z = standard_normal_quantile(p);
    let a = 2.0 / (9.0 * k);
    k * (1.0 - a + z * a.sqrt()).powi(3)
}

/// Standard normal quantile (Acklam's rational approximation).
fn standard_normal_quantile(p: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&p));
    // Coefficients for the central and tail regions.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let plow = 0.02425;
    if p < plow {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - plow {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

impl TruthDiscovery for Catd {
    fn discover(&self, data: &SensingData) -> TruthDiscoveryResult {
        let n = data.num_accounts();
        if data.is_empty() || n == 0 {
            return TruthDiscoveryResult {
                truths: vec![None; data.num_tasks()],
                weights: vec![0.0; n],
                iterations: 0,
                converged: true,
            };
        }
        // Iterate on residuals from the per-task means (see
        // `SensingData::centered`): offset-independent arithmetic.
        let (centered, centers) = data.centered();
        let data = &centered;
        let mut truths: Vec<Option<f64>> = data.task_means();
        let stds = data.task_value_std();
        let claim_counts: Vec<usize> = (0..n).map(|a| data.account_reports(a).len()).collect();
        let mut weights = vec![1.0; n];
        let mut iterations = 0;
        let mut converged = false;
        for iter in 0..self.convergence.max_iterations {
            iterations = iter + 1;
            // Weight update: chi-square-scaled inverse loss.
            let mut losses = vec![0.0f64; n];
            for r in data.reports() {
                let Some(truth) = truths[r.task] else {
                    continue;
                };
                let sigma = stds[r.task].unwrap_or(1.0).max(1e-9);
                let e = (r.value - truth) / sigma;
                losses[r.account] += e * e;
            }
            for a in 0..n {
                if claim_counts[a] == 0 {
                    weights[a] = 0.0;
                    continue;
                }
                let quantile = chi_square_quantile(self.alpha / 2.0, claim_counts[a] as f64);
                weights[a] = quantile.max(1e-6) / losses[a].max(1e-9);
            }
            // Truth update.
            let mut num = vec![0.0; data.num_tasks()];
            let mut den = vec![0.0; data.num_tasks()];
            for r in data.reports() {
                num[r.task] += weights[r.account] * r.value;
                den[r.task] += weights[r.account];
            }
            let next: Vec<Option<f64>> = (0..data.num_tasks())
                .map(|t| (den[t] > 0.0).then(|| num[t] / den[t]).or(truths[t]))
                .collect();
            let done = self.convergence.is_converged(&truths, &next);
            truths = next;
            if done {
                converged = true;
                break;
            }
        }
        let truths = truths
            .iter()
            .zip(&centers)
            .map(|(t, c)| match (t, c) {
                (Some(t), Some(c)) => Some(t + c),
                _ => None,
            })
            .collect();
        TruthDiscoveryResult {
            truths,
            weights,
            iterations,
            converged,
        }
    }

    fn name(&self) -> &'static str {
        "CATD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_known_values() {
        assert!(standard_normal_quantile(0.5).abs() < 1e-8);
        assert!((standard_normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((standard_normal_quantile(0.025) + 1.959964).abs() < 1e-4);
    }

    #[test]
    fn chi_square_quantile_sane() {
        // χ²(0.025, 10) ≈ 3.247.
        let q = chi_square_quantile(0.025, 10.0);
        assert!((q - 3.247).abs() < 0.15, "{q}");
        // Lower quantiles grow with degrees of freedom.
        assert!(chi_square_quantile(0.025, 20.0) > q);
    }

    #[test]
    fn sparse_sources_are_discounted() {
        let mut d = SensingData::new(10);
        // Account 0 reports every task accurately; account 1 reports one
        // task, also accurately; account 2 adds mild noise everywhere.
        for t in 0..10 {
            d.add_report(0, t, t as f64, 0.0);
            d.add_report(2, t, t as f64 + 0.4, 0.0);
        }
        d.add_report(1, 0, 0.05, 0.0);
        let r = Catd::default().discover(&d);
        assert!(
            r.weights[0] > r.weights[1],
            "dense accurate source should outweigh sparse one: {:?}",
            r.weights
        );
    }

    #[test]
    fn agreement_beats_outlier() {
        let mut d = SensingData::new(3);
        for t in 0..3 {
            d.add_report(0, t, 10.0, 0.0);
            d.add_report(1, t, 10.1, 0.0);
            d.add_report(2, t, 50.0, 0.0);
        }
        let r = Catd::default().discover(&d);
        for t in 0..3 {
            let v = r.truths[t].unwrap();
            assert!(v < 20.0, "task {t}: {v}");
        }
    }

    #[test]
    fn empty_data_is_fine() {
        let r = Catd::default().discover(&SensingData::new(2));
        assert_eq!(r.truths, vec![None, None]);
    }
}
